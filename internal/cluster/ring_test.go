package cluster

import (
	"fmt"
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate shard accepted")
	}
	r, err := NewRing([]string{"a"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.VNodes() != DefaultVNodes {
		t.Errorf("vnodes = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
}

// TestRingDeterministic: two rings built from the same shard set (in any
// order) route every key identically — the property that lets coordinator
// and tests agree on placement with no coordination.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"s0", "s1", "s2"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"s2", "s0", "s1"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("mesh-%d", i)
		if a.Pick(key) != b.Pick(key) {
			t.Fatalf("key %q: %q vs %q (shard order changed placement)", key, a.Pick(key), b.Pick(key))
		}
		ao, bo := a.Order(key), b.Order(key)
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("key %q: succession %v vs %v", key, ao, bo)
			}
		}
	}
}

// TestRingOrder: the succession for any key lists every shard exactly once,
// starting with Pick's choice.
func TestRingOrder(t *testing.T) {
	shards := []string{"s0", "s1", "s2", "s3", "s4"}
	r, err := NewRing(shards, 16)
	if err != nil {
		t.Fatal(err)
	}
	hits := map[string]int{}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		order := r.Order(key)
		if len(order) != len(shards) {
			t.Fatalf("key %q: succession %v misses shards", key, order)
		}
		if order[0] != r.Pick(key) {
			t.Fatalf("key %q: Order[0] %q != Pick %q", key, order[0], r.Pick(key))
		}
		seen := map[string]bool{}
		for _, s := range order {
			if seen[s] {
				t.Fatalf("key %q: %q appears twice in %v", key, s, order)
			}
			seen[s] = true
		}
		hits[order[0]]++
	}
	// Sanity: with 100 keys over 5 shards and 16 vnodes, no shard should be
	// starved completely.
	for _, s := range shards {
		if hits[s] == 0 {
			t.Errorf("shard %s owns no keys of 100 (ring badly unbalanced)", s)
		}
	}
}

// TestRingStability: removing one shard only moves keys that were on it —
// the consistent-hashing contract that keeps failover churn proportional
// to the failure, not the cluster.
func TestRingStability(t *testing.T) {
	full, err := NewRing([]string{"s0", "s1", "s2", "s3"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"s0", "s1", "s3"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, is := full.Pick(key), reduced.Pick(key)
		if was != "s2" && was != is {
			t.Fatalf("key %q moved %q -> %q though its shard survived", key, was, is)
		}
		if was == "s2" {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no key was owned by the removed shard; test has no teeth")
	}
}

// TestSplitPatches: contiguous near-equal ranges that exactly cover [0, k),
// one per shard (capped at k), each with the full succession as its
// failover chain.
func TestSplitPatches(t *testing.T) {
	order := []string{"s0", "s1", "s2"}
	for _, k := range []int{1, 2, 3, 7, 16} {
		as := splitPatches(order, k)
		wantN := min(len(order), k)
		if len(as) != wantN {
			t.Fatalf("k=%d: %d assignments, want %d", k, len(as), wantN)
		}
		next := 0
		for i, a := range as {
			if a.succession[0] != order[i] {
				t.Errorf("k=%d assignment %d: assignee %q, want %q", k, i, a.succession[0], order[i])
			}
			if len(a.succession) != len(order) {
				t.Errorf("k=%d assignment %d: succession %v not the full shard set", k, i, a.succession)
			}
			if len(a.patches) == 0 {
				t.Errorf("k=%d assignment %d: empty patch range", k, i)
			}
			for _, p := range a.patches {
				if p != next {
					t.Fatalf("k=%d: patch %d out of order (want %d) — ranges not contiguous", k, p, next)
				}
				next++
			}
		}
		if next != k {
			t.Fatalf("k=%d: ranges cover %d patches", k, next)
		}
		// Near-equal: range sizes differ by at most one.
		lo, hi := k, 0
		for _, a := range as {
			if len(a.patches) < lo {
				lo = len(a.patches)
			}
			if len(a.patches) > hi {
				hi = len(a.patches)
			}
		}
		if hi-lo > 1 {
			t.Errorf("k=%d: range sizes span [%d, %d]", k, lo, hi)
		}
	}
}
