package geom

import (
	"math"
	"testing"
)

// TestClipTriangleBoxDegenerate drives the specialised box clipper with
// degenerate triangles and boxes: every case must produce an empty region
// and never a NaN area.
func TestClipTriangleBoxDegenerate(t *testing.T) {
	nan := math.NaN()
	unit := Box(0, 0, 1, 1)
	cases := []struct {
		name string
		tri  Triangle
		box  AABB
	}{
		{"collinear horizontal", Tri(Pt(0, 0.5), Pt(0.5, 0.5), Pt(1, 0.5)), unit},
		{"collinear diagonal", Tri(Pt(0, 0), Pt(0.5, 0.5), Pt(1, 1)), unit},
		{"repeated vertex", Tri(Pt(0.2, 0.2), Pt(0.2, 0.2), Pt(0.8, 0.4)), unit},
		{"all same vertex", Tri(Pt(0.3, 0.3), Pt(0.3, 0.3), Pt(0.3, 0.3)), unit},
		{"nan vertex", Tri(Pt(nan, 0), Pt(1, 0), Pt(0, 1)), unit},
		{"all nan", Tri(Pt(nan, nan), Pt(nan, nan), Pt(nan, nan)), unit},
		{"zero-width box", Tri(Pt(0, 0), Pt(1, 0), Pt(0, 1)), Box(0.5, 0, 0.5, 1)},
		{"zero-height box", Tri(Pt(0, 0), Pt(1, 0), Pt(0, 1)), Box(0, 0.5, 1, 0.5)},
		{"inverted box", Tri(Pt(0, 0), Pt(1, 0), Pt(0, 1)), Box(1, 1, 0, 0)},
		{"nan box", Tri(Pt(0, 0), Pt(1, 0), Pt(0, 1)), Box(nan, 0, 1, 1)},
		{"degenerate tri and box", Tri(Pt(0, 0), Pt(1, 1), Pt(2, 2)), Box(3, 3, 3, 3)},
	}
	var c Clipper
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			poly := c.ClipTriangleBox(tc.tri, tc.box)
			if len(poly) != 0 {
				t.Fatalf("degenerate clip returned %d vertices: %v", len(poly), poly)
			}
			if a := Polygon(poly).Area(); a != 0 || math.IsNaN(a) {
				t.Fatalf("degenerate clip area = %v, want 0", a)
			}
		})
	}
}

// TestClipConvexDegenerateClipRegion: zero-area and undersized clip
// polygons must clip everything away instead of producing NaN geometry.
func TestClipConvexDegenerateClipRegion(t *testing.T) {
	nan := math.NaN()
	subject := Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
	cases := []struct {
		name string
		clip Polygon
	}{
		{"empty clip", Polygon{}},
		{"point clip", Polygon{Pt(0.5, 0.5)}},
		{"segment clip", Polygon{Pt(0, 0), Pt(1, 1)}},
		{"collinear clip", Polygon{Pt(0, 0), Pt(0.5, 0.5), Pt(1, 1)}},
		{"repeated-vertex clip", Polygon{Pt(0.2, 0.2), Pt(0.2, 0.2), Pt(0.2, 0.2)}},
		{"nan clip", Polygon{Pt(nan, 0), Pt(1, 0), Pt(0.5, 1)}},
	}
	var c Clipper
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := c.ClipConvex(subject, tc.clip)
			if len(out) != 0 {
				t.Fatalf("degenerate clip region returned %v", out)
			}
		})
	}

	// Sanity: a genuine clip region still works after the degenerate calls
	// (the Clipper's buffers must not be poisoned).
	out := c.ClipConvex(subject, Polygon{Pt(0.25, 0.25), Pt(0.75, 0.25), Pt(0.75, 0.75), Pt(0.25, 0.75)})
	if a := Polygon(out).Area(); math.Abs(a-0.25) > 1e-12 {
		t.Fatalf("post-degenerate clip area = %v, want 0.25", a)
	}
}

// TestSplitFanDegenerate: collinear fans and NaN-cornered polygons produce
// no triangles, and no emitted triangle ever has a non-finite area.
func TestSplitFanDegenerate(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name    string
		poly    Polygon
		minArea float64
		want    int
	}{
		{"collinear fan", Polygon{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)}, 0, 0},
		{"repeated points", Polygon{Pt(0, 0), Pt(0, 0), Pt(0, 0), Pt(0, 0)}, 0, 0},
		{"nan corner", Polygon{Pt(0, 0), Pt(1, 0), Pt(nan, 1)}, 0, 0},
		{"nan filter", Polygon{Pt(0, 0), Pt(1, 0), Pt(0, 1)}, nan, 1},
		{"valid square", Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}, 0, 2},
		{"mixed: sliver dropped", Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1e-16), Pt(0, 1)}, 1e-12, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tris := SplitFan(tc.poly, nil, tc.minArea)
			if len(tris) != tc.want {
				t.Fatalf("got %d triangles, want %d: %v", len(tris), tc.want, tris)
			}
			for _, tr := range tris {
				if a := tr.Area(); !(a > 0) || math.IsInf(a, 0) {
					t.Fatalf("emitted triangle with area %v", a)
				}
			}
		})
	}
}
