// Package geom provides the 2D geometric primitives used throughout the
// stencil-evaluation library: points, vectors, axis-aligned boxes, triangles,
// convex polygons, and the Sutherland–Hodgman clipping algorithm that the
// post-processor uses to intersect stencil squares with mesh elements.
//
// All coordinates are float64. Polygons are stored counter-clockwise (CCW);
// the clipping and triangulation routines require and preserve that
// orientation.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane. It doubles as a 2D vector.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Orient returns twice the signed area of triangle (a, b, c): positive when
// the triple is counter-clockwise, negative when clockwise, and zero when
// collinear (within floating-point evaluation of the determinant).
func Orient(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// AABB is an axis-aligned bounding box. A box with Min components greater
// than the corresponding Max components is empty.
type AABB struct {
	Min, Max Point
}

// EmptyAABB returns a box that contains nothing; extending it by any point
// yields a degenerate box around that point.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// Box builds an AABB from explicit bounds.
func Box(minX, minY, maxX, maxY float64) AABB {
	return AABB{Min: Point{minX, minY}, Max: Point{maxX, maxY}}
}

// Extend returns the smallest box containing both b and p.
func (b AABB) Extend(p Point) AABB {
	return AABB{
		Min: Point{math.Min(b.Min.X, p.X), math.Min(b.Min.Y, p.Y)},
		Max: Point{math.Max(b.Max.X, p.X), math.Max(b.Max.Y, p.Y)},
	}
}

// Union returns the smallest box containing both boxes.
func (b AABB) Union(c AABB) AABB {
	return b.Extend(c.Min).Extend(c.Max)
}

// Pad returns b grown by w on every side.
func (b AABB) Pad(w float64) AABB {
	return AABB{
		Min: Point{b.Min.X - w, b.Min.Y - w},
		Max: Point{b.Max.X + w, b.Max.Y + w},
	}
}

// Translate returns b shifted by d.
func (b AABB) Translate(d Point) AABB {
	return AABB{Min: b.Min.Add(d), Max: b.Max.Add(d)}
}

// Width returns the extent of b along x.
func (b AABB) Width() float64 { return b.Max.X - b.Min.X }

// Height returns the extent of b along y.
func (b AABB) Height() float64 { return b.Max.Y - b.Min.Y }

// Area returns the area of b, or 0 for an empty box.
func (b AABB) Area() float64 {
	if b.Empty() {
		return 0
	}
	return b.Width() * b.Height()
}

// Center returns the midpoint of b.
func (b AABB) Center() Point {
	return Point{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2}
}

// Empty reports whether b contains no points.
func (b AABB) Empty() bool { return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y }

// Contains reports whether p lies inside b (boundary inclusive).
func (b AABB) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y
}

// Intersects reports whether b and c share at least one point
// (touching boundaries count as intersecting).
func (b AABB) Intersects(c AABB) bool {
	return b.Min.X <= c.Max.X && c.Min.X <= b.Max.X &&
		b.Min.Y <= c.Max.Y && c.Min.Y <= b.Max.Y
}

// Intersect returns the overlap of b and c; the result may be empty.
func (b AABB) Intersect(c AABB) AABB {
	return AABB{
		Min: Point{math.Max(b.Min.X, c.Min.X), math.Max(b.Min.Y, c.Min.Y)},
		Max: Point{math.Min(b.Max.X, c.Max.X), math.Min(b.Max.Y, c.Max.Y)},
	}
}

// Corners returns the four corners of b in CCW order starting at Min.
func (b AABB) Corners() [4]Point {
	return [4]Point{
		b.Min,
		{b.Max.X, b.Min.Y},
		b.Max,
		{b.Min.X, b.Max.Y},
	}
}

// String implements fmt.Stringer.
func (b AABB) String() string {
	return fmt.Sprintf("[%v - %v]", b.Min, b.Max)
}
