package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randTri builds a non-degenerate triangle from three random points in
// [-2, 2]^2, retrying until its area is meaningful.
func randTri(r *rand.Rand) Triangle {
	for {
		tri := Tri(
			Pt(r.Float64()*4-2, r.Float64()*4-2),
			Pt(r.Float64()*4-2, r.Float64()*4-2),
			Pt(r.Float64()*4-2, r.Float64()*4-2),
		)
		if tri.Area() > 1e-3 {
			return tri.CCW()
		}
	}
}

func randBox(r *rand.Rand) AABB {
	x0 := r.Float64()*4 - 2
	y0 := r.Float64()*4 - 2
	return Box(x0, y0, x0+r.Float64()*2, y0+r.Float64()*2)
}

// Property: the clipped polygon's area never exceeds either input's area,
// and is non-negative.
func TestPropClipAreaBounded(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var c Clipper
	for i := 0; i < 500; i++ {
		tri := randTri(r)
		box := randBox(r)
		p := Polygon(c.ClipTriangleBox(tri, box))
		a := p.Area()
		if a < -1e-12 {
			t.Fatalf("negative clip area %v for %v x %v", a, tri, box)
		}
		if a > tri.Area()+1e-9 {
			t.Fatalf("clip area %v exceeds triangle area %v", a, tri.Area())
		}
		if a > box.Area()+1e-9 {
			t.Fatalf("clip area %v exceeds box area %v", a, box.Area())
		}
	}
}

// Property: all vertices of the clipped polygon lie in (a slightly padded
// copy of) both the triangle and the box.
func TestPropClipVerticesInside(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var c Clipper
	for i := 0; i < 500; i++ {
		tri := randTri(r)
		box := randBox(r)
		p := c.ClipTriangleBox(tri, box)
		pad := box.Pad(1e-9)
		for _, v := range p {
			if !pad.Contains(v) {
				t.Fatalf("clip vertex %v outside box %v", v, box)
			}
			// Inside triangle up to tolerance: use barycentric coords.
			wa, wb, wc := tri.Barycentric(v)
			if wa < -1e-7 || wb < -1e-7 || wc < -1e-7 {
				t.Fatalf("clip vertex %v outside triangle %v (bary %v %v %v)",
					v, tri, wa, wb, wc)
			}
		}
	}
}

// Property: splitting the whole box into a grid of cells and clipping the
// triangle against every cell partitions the triangle∩box area exactly.
func TestPropClipPartitionsArea(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var c Clipper
	for i := 0; i < 100; i++ {
		tri := randTri(r)
		// Grid over the triangle's bounding box.
		b := tri.Bounds()
		n := 1 + r.Intn(4)
		dx := b.Width() / float64(n)
		dy := b.Height() / float64(n)
		sum := 0.0
		for ix := 0; ix < n; ix++ {
			for iy := 0; iy < n; iy++ {
				cell := Box(
					b.Min.X+float64(ix)*dx, b.Min.Y+float64(iy)*dy,
					b.Min.X+float64(ix+1)*dx, b.Min.Y+float64(iy+1)*dy,
				)
				sum += Polygon(c.ClipTriangleBox(tri, cell)).Area()
			}
		}
		if math.Abs(sum-tri.Area()) > 1e-9*math.Max(1, tri.Area()) {
			t.Fatalf("partition sum %v != triangle area %v", sum, tri.Area())
		}
	}
}

// Property: fan triangulation preserves the polygon area.
func TestPropFanPreservesArea(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var c Clipper
	for i := 0; i < 300; i++ {
		tri := randTri(r)
		box := randBox(r)
		p := Polygon(c.ClipTriangleBox(tri, box))
		tris := SplitFan(p, nil, 0)
		sum := 0.0
		for _, tr := range tris {
			sum += tr.Area()
		}
		if math.Abs(sum-p.Area()) > 1e-10 {
			t.Fatalf("fan area %v != polygon area %v", sum, p.Area())
		}
	}
}

// Property: Contains agrees with barycentric coordinates for random points.
func TestPropContainsMatchesBarycentric(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		tri := randTri(r)
		p := Pt(r.Float64()*4-2, r.Float64()*4-2)
		wa, wb, wc := tri.Barycentric(p)
		inside := wa >= 0 && wb >= 0 && wc >= 0
		// Skip points too close to the boundary where tolerance differs.
		m := math.Min(wa, math.Min(wb, wc))
		if math.Abs(m) < 1e-9 {
			continue
		}
		if got := tri.Contains(p); got != inside {
			t.Fatalf("Contains(%v) = %v, barycentric says %v (%v %v %v)",
				p, got, inside, wa, wb, wc)
		}
	}
}

// Property (testing/quick): AABB union contains both inputs' corners.
func TestQuickAABBUnion(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		if anyNaN(ax, ay, bx, by, cx, cy, dx, dy) {
			return true
		}
		b1 := EmptyAABB().Extend(Pt(ax, ay)).Extend(Pt(bx, by))
		b2 := EmptyAABB().Extend(Pt(cx, cy)).Extend(Pt(dx, dy))
		u := b1.Union(b2)
		return u.Contains(b1.Min) && u.Contains(b1.Max) &&
			u.Contains(b2.Min) && u.Contains(b2.Max)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): Orient is antisymmetric under swapping two
// arguments.
func TestQuickOrientAntisymmetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		if anyNaN(ax, ay, bx, by, cx, cy) {
			return true
		}
		// Confine magnitudes: at ~1e308 the determinant overflows and the
		// identity cannot hold in float64.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a := Pt(clamp(ax), clamp(ay))
		b := Pt(clamp(bx), clamp(by))
		c := Pt(clamp(cx), clamp(cy))
		o1 := Orient(a, b, c)
		o2 := Orient(b, a, c)
		// The two evaluations use different expression trees, so allow
		// rounding at the scale of the intermediate products.
		scale := math.Max(1, math.Abs(o1))
		return math.Abs(o1+o2) <= 1e-9*scale*1e3
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func anyNaN(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func BenchmarkClipTriangleBox(b *testing.B) {
	var c Clipper
	tri := Tri(Pt(0.1, 0.1), Pt(0.9, 0.2), Pt(0.4, 0.8))
	box := Box(0.2, 0.2, 0.7, 0.7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.ClipTriangleBox(tri, box)
	}
}

func BenchmarkClipConvex(b *testing.B) {
	var c Clipper
	tri := Polygon{Pt(0.1, 0.1), Pt(0.9, 0.2), Pt(0.4, 0.8)}
	box := Polygon{Pt(0.2, 0.2), Pt(0.7, 0.2), Pt(0.7, 0.7), Pt(0.2, 0.7)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.ClipConvex(tri, box)
	}
}
