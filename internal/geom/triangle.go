package geom

import "math"

// Triangle is an ordered triple of vertices. Mesh elements are stored CCW;
// helper routines that require CCW orientation say so explicitly.
type Triangle struct {
	A, B, C Point
}

// Tri is shorthand for Triangle{a, b, c}.
func Tri(a, b, c Point) Triangle { return Triangle{a, b, c} }

// SignedArea returns the signed area of t (positive when CCW).
func (t Triangle) SignedArea() float64 { return Orient(t.A, t.B, t.C) / 2 }

// Area returns the absolute area of t.
func (t Triangle) Area() float64 { return math.Abs(t.SignedArea()) }

// Centroid returns the barycentre of t.
func (t Triangle) Centroid() Point {
	return Point{(t.A.X + t.B.X + t.C.X) / 3, (t.A.Y + t.B.Y + t.C.Y) / 3}
}

// Bounds returns the bounding box of t.
func (t Triangle) Bounds() AABB {
	return EmptyAABB().Extend(t.A).Extend(t.B).Extend(t.C)
}

// Translate returns t shifted by d.
func (t Triangle) Translate(d Point) Triangle {
	return Triangle{t.A.Add(d), t.B.Add(d), t.C.Add(d)}
}

// CCW returns t with vertices reordered counter-clockwise.
func (t Triangle) CCW() Triangle {
	if t.SignedArea() < 0 {
		return Triangle{t.A, t.C, t.B}
	}
	return t
}

// Contains reports whether p lies in t (boundary inclusive). t must be CCW.
func (t Triangle) Contains(p Point) bool {
	const eps = 1e-14
	return Orient(t.A, t.B, p) >= -eps &&
		Orient(t.B, t.C, p) >= -eps &&
		Orient(t.C, t.A, p) >= -eps
}

// LongestEdge returns the length of the longest edge of t.
func (t Triangle) LongestEdge() float64 {
	return math.Max(t.A.Dist(t.B), math.Max(t.B.Dist(t.C), t.C.Dist(t.A)))
}

// ShortestEdge returns the length of the shortest edge of t.
func (t Triangle) ShortestEdge() float64 {
	return math.Min(t.A.Dist(t.B), math.Min(t.B.Dist(t.C), t.C.Dist(t.A)))
}

// Polygon returns the triangle as a CCW polygon.
func (t Triangle) Polygon() Polygon {
	t = t.CCW()
	return Polygon{t.A, t.B, t.C}
}

// Barycentric returns the barycentric coordinates (wa, wb, wc) of p with
// respect to t, with wa+wb+wc = 1. For a degenerate triangle the result is
// NaN-valued.
func (t Triangle) Barycentric(p Point) (wa, wb, wc float64) {
	den := Orient(t.A, t.B, t.C)
	wa = Orient(p, t.B, t.C) / den
	wb = Orient(t.A, p, t.C) / den
	wc = 1 - wa - wb
	return
}

// FromBarycentric maps barycentric coordinates back to a point in the plane.
func (t Triangle) FromBarycentric(wa, wb, wc float64) Point {
	return Point{
		wa*t.A.X + wb*t.B.X + wc*t.C.X,
		wa*t.A.Y + wb*t.B.Y + wc*t.C.Y,
	}
}

// Circumcircle returns the circumcentre and squared circumradius of t.
// ok is false when the triangle is (nearly) degenerate.
func (t Triangle) Circumcircle() (center Point, r2 float64, ok bool) {
	ax, ay := t.A.X, t.A.Y
	bx, by := t.B.X-ax, t.B.Y-ay
	cx, cy := t.C.X-ax, t.C.Y-ay
	d := 2 * (bx*cy - by*cx)
	if math.Abs(d) < 1e-300 {
		return Point{}, 0, false
	}
	b2 := bx*bx + by*by
	c2 := cx*cx + cy*cy
	ux := (cy*b2 - by*c2) / d
	uy := (bx*c2 - cx*b2) / d
	return Point{ax + ux, ay + uy}, ux*ux + uy*uy, true
}

// InCircumcircle reports whether p lies strictly inside the circumcircle of
// t. t must be CCW for the sign convention used here.
func (t Triangle) InCircumcircle(p Point) bool {
	ax, ay := t.A.X-p.X, t.A.Y-p.Y
	bx, by := t.B.X-p.X, t.B.Y-p.Y
	cx, cy := t.C.X-p.X, t.C.Y-p.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > 0
}

// AffineFromReference returns the affine map (x0, jac) such that a point
// (r, s) in the unit reference triangle {(r,s): r,s >= 0, r+s <= 1} maps to
//
//	x = x0 + jac * (r, s)
//
// where jac is the 2x2 Jacobian [B-A | C-A] stored row-major as
// [xr xs; yr ys].
func (t Triangle) AffineFromReference() (x0 Point, jac [4]float64) {
	x0 = t.A
	jac = [4]float64{
		t.B.X - t.A.X, t.C.X - t.A.X,
		t.B.Y - t.A.Y, t.C.Y - t.A.Y,
	}
	return
}

// MapReference maps reference coordinates (r, s) in the unit triangle to the
// physical point inside t.
func (t Triangle) MapReference(r, s float64) Point {
	return Point{
		t.A.X + (t.B.X-t.A.X)*r + (t.C.X-t.A.X)*s,
		t.A.Y + (t.B.Y-t.A.Y)*r + (t.C.Y-t.A.Y)*s,
	}
}

// InverseMap maps a physical point p to reference coordinates (r, s) such
// that t.MapReference(r, s) == p. The triangle must be non-degenerate.
func (t Triangle) InverseMap(p Point) (r, s float64) {
	return t.AffineInverse().Map(p)
}

// AffineInverse holds the precomputed coefficients of InverseMap: the
// Jacobian entries and reciprocal determinant of the affine reference map.
// Hot loops that invert many points against the same triangle compute this
// once and call Map per point, replacing the per-point determinant division
// with a multiplication.
type AffineInverse struct {
	X0, Y0         float64 // vertex A
	Xr, Xs, Yr, Ys float64 // Jacobian [B−A | C−A]
	InvDet         float64
}

// AffineInverse precomputes the inverse reference map of t. The triangle
// must be non-degenerate.
func (t Triangle) AffineInverse() AffineInverse {
	xr := t.B.X - t.A.X
	xs := t.C.X - t.A.X
	yr := t.B.Y - t.A.Y
	ys := t.C.Y - t.A.Y
	return AffineInverse{
		X0: t.A.X, Y0: t.A.Y,
		Xr: xr, Xs: xs, Yr: yr, Ys: ys,
		InvDet: 1 / (xr*ys - xs*yr),
	}
}

// Map maps a physical point p to reference coordinates (r, s).
func (ai AffineInverse) Map(p Point) (r, s float64) {
	dx := p.X - ai.X0
	dy := p.Y - ai.Y0
	r = (dx*ai.Ys - dy*ai.Xs) * ai.InvDet
	s = (dy*ai.Xr - dx*ai.Yr) * ai.InvDet
	return
}
