package geom

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointOps(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(3, -1)
	if got := p.Add(q); got != Pt(4, 1) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -7 {
		t.Errorf("Cross = %v", got)
	}
	if got := Pt(3, 4).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := Pt(0, 0).Dist(Pt(3, 4)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestOrient(t *testing.T) {
	if Orient(Pt(0, 0), Pt(1, 0), Pt(0, 1)) <= 0 {
		t.Error("CCW triple should have positive orientation")
	}
	if Orient(Pt(0, 0), Pt(0, 1), Pt(1, 0)) >= 0 {
		t.Error("CW triple should have negative orientation")
	}
	if Orient(Pt(0, 0), Pt(1, 1), Pt(2, 2)) != 0 {
		t.Error("collinear triple should be zero")
	}
}

func TestAABBBasics(t *testing.T) {
	b := Box(0, 0, 2, 1)
	if b.Width() != 2 || b.Height() != 1 || b.Area() != 2 {
		t.Errorf("box dims wrong: %v", b)
	}
	if b.Center() != Pt(1, 0.5) {
		t.Errorf("center = %v", b.Center())
	}
	if !b.Contains(Pt(1, 0.5)) || !b.Contains(Pt(0, 0)) || b.Contains(Pt(3, 0)) {
		t.Error("Contains wrong")
	}
	if !b.Intersects(Box(1, 0.5, 3, 3)) {
		t.Error("should intersect")
	}
	if b.Intersects(Box(2.1, 0, 3, 1)) {
		t.Error("should not intersect")
	}
	if got := b.Intersect(Box(1, -1, 3, 0.5)); got != Box(1, 0, 2, 0.5) {
		t.Errorf("Intersect = %v", got)
	}
	if got := b.Pad(1); got != Box(-1, -1, 3, 2) {
		t.Errorf("Pad = %v", got)
	}
	if got := b.Translate(Pt(1, 1)); got != Box(1, 1, 3, 2) {
		t.Errorf("Translate = %v", got)
	}
}

func TestEmptyAABB(t *testing.T) {
	e := EmptyAABB()
	if !e.Empty() {
		t.Fatal("EmptyAABB not empty")
	}
	if e.Area() != 0 {
		t.Error("empty area should be 0")
	}
	got := e.Extend(Pt(1, 2))
	if got.Min != Pt(1, 2) || got.Max != Pt(1, 2) {
		t.Errorf("Extend of empty = %v", got)
	}
	u := e.Union(Box(0, 0, 1, 1))
	if u != Box(0, 0, 1, 1) {
		t.Errorf("Union with empty = %v", u)
	}
}

func TestAABBCorners(t *testing.T) {
	c := Box(0, 0, 1, 2).Corners()
	want := [4]Point{{0, 0}, {1, 0}, {1, 2}, {0, 2}}
	if c != want {
		t.Errorf("Corners = %v", c)
	}
	// Corners must form a CCW polygon.
	if Polygon(c[:]).Area() <= 0 {
		t.Error("corners not CCW")
	}
}

func TestTriangleArea(t *testing.T) {
	tri := Tri(Pt(0, 0), Pt(1, 0), Pt(0, 1))
	if !almostEq(tri.Area(), 0.5, 1e-15) {
		t.Errorf("Area = %v", tri.Area())
	}
	if tri.SignedArea() <= 0 {
		t.Error("CCW triangle should have positive signed area")
	}
	cw := Tri(Pt(0, 0), Pt(0, 1), Pt(1, 0))
	if cw.SignedArea() >= 0 {
		t.Error("CW triangle should have negative signed area")
	}
	if cw.CCW().SignedArea() <= 0 {
		t.Error("CCW() should flip orientation")
	}
}

func TestTriangleContains(t *testing.T) {
	tri := Tri(Pt(0, 0), Pt(1, 0), Pt(0, 1))
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0.25, 0.25), true},
		{Pt(0, 0), true},       // vertex
		{Pt(0.5, 0), true},     // edge
		{Pt(0.5, 0.5), true},   // hypotenuse
		{Pt(0.6, 0.6), false},  // outside hypotenuse
		{Pt(-0.1, 0.1), false}, // outside left
	}
	for _, c := range cases {
		if got := tri.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestTriangleEdges(t *testing.T) {
	tri := Tri(Pt(0, 0), Pt(3, 0), Pt(0, 4))
	if tri.LongestEdge() != 5 {
		t.Errorf("LongestEdge = %v", tri.LongestEdge())
	}
	if tri.ShortestEdge() != 3 {
		t.Errorf("ShortestEdge = %v", tri.ShortestEdge())
	}
}

func TestBarycentricRoundTrip(t *testing.T) {
	tri := Tri(Pt(0.2, 0.1), Pt(1.5, 0.3), Pt(0.7, 2.1))
	p := Pt(0.8, 0.9)
	wa, wb, wc := tri.Barycentric(p)
	if !almostEq(wa+wb+wc, 1, 1e-12) {
		t.Errorf("barycentric sum = %v", wa+wb+wc)
	}
	q := tri.FromBarycentric(wa, wb, wc)
	if p.Dist(q) > 1e-12 {
		t.Errorf("round trip %v -> %v", p, q)
	}
}

func TestCircumcircle(t *testing.T) {
	tri := Tri(Pt(0, 0), Pt(2, 0), Pt(1, 1))
	c, r2, ok := tri.Circumcircle()
	if !ok {
		t.Fatal("circumcircle failed")
	}
	for _, v := range []Point{tri.A, tri.B, tri.C} {
		d2 := v.Sub(c).Dot(v.Sub(c))
		if !almostEq(d2, r2, 1e-12) {
			t.Errorf("vertex %v at distance2 %v, want %v", v, d2, r2)
		}
	}
	_, _, ok = Tri(Pt(0, 0), Pt(1, 1), Pt(2, 2)).Circumcircle()
	if ok {
		t.Error("degenerate triangle should fail")
	}
}

func TestInCircumcircle(t *testing.T) {
	tri := Tri(Pt(0, 0), Pt(1, 0), Pt(0, 1)) // CCW
	if !tri.InCircumcircle(Pt(0.5, 0.5)) {
		// (0.5,0.5) is on the circle boundary... use interior point.
		t.Log("boundary point excluded as expected")
	}
	if !tri.InCircumcircle(Pt(0.4, 0.4)) {
		t.Error("interior point should be in circumcircle")
	}
	if tri.InCircumcircle(Pt(2, 2)) {
		t.Error("far point should not be in circumcircle")
	}
}

func TestAffineMaps(t *testing.T) {
	tri := Tri(Pt(0.3, 0.2), Pt(1.1, 0.5), Pt(0.6, 1.4))
	// Reference corners map to the triangle vertices.
	if tri.MapReference(0, 0).Dist(tri.A) > 1e-15 ||
		tri.MapReference(1, 0).Dist(tri.B) > 1e-15 ||
		tri.MapReference(0, 1).Dist(tri.C) > 1e-15 {
		t.Error("MapReference corners wrong")
	}
	// Inverse map round trip.
	p := tri.MapReference(0.3, 0.4)
	r, s := tri.InverseMap(p)
	if !almostEq(r, 0.3, 1e-12) || !almostEq(s, 0.4, 1e-12) {
		t.Errorf("InverseMap = (%v, %v)", r, s)
	}
	x0, jac := tri.AffineFromReference()
	q := Point{
		x0.X + jac[0]*0.3 + jac[1]*0.4,
		x0.Y + jac[2]*0.3 + jac[3]*0.4,
	}
	if p.Dist(q) > 1e-15 {
		t.Errorf("AffineFromReference inconsistent: %v vs %v", p, q)
	}
}

func TestPolygonAreaCentroid(t *testing.T) {
	square := Polygon{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if !almostEq(square.Area(), 4, 1e-15) {
		t.Errorf("square area = %v", square.Area())
	}
	if square.Centroid().Dist(Pt(1, 1)) > 1e-14 {
		t.Errorf("square centroid = %v", square.Centroid())
	}
	if (Polygon{Pt(0, 0), Pt(1, 1)}).Area() != 0 {
		t.Error("degenerate polygon area should be 0")
	}
	// Degenerate centroid falls back to vertex average.
	c := Polygon{Pt(0, 0), Pt(2, 0)}.Centroid()
	if c.Dist(Pt(1, 0)) > 1e-14 {
		t.Errorf("degenerate centroid = %v", c)
	}
}

func TestClipTriangleBoxFullyInside(t *testing.T) {
	var c Clipper
	tri := Tri(Pt(0.2, 0.2), Pt(0.8, 0.2), Pt(0.5, 0.8))
	got := c.ClipTriangleBox(tri, Box(0, 0, 1, 1))
	if !almostEq(Polygon(got).Area(), tri.Area(), 1e-14) {
		t.Errorf("fully inside: area %v want %v", Polygon(got).Area(), tri.Area())
	}
}

func TestClipTriangleBoxFullyOutside(t *testing.T) {
	var c Clipper
	tri := Tri(Pt(2, 2), Pt(3, 2), Pt(2, 3))
	got := c.ClipTriangleBox(tri, Box(0, 0, 1, 1))
	if Polygon(got).Area() != 0 {
		t.Errorf("fully outside: area %v", Polygon(got).Area())
	}
}

func TestClipTriangleBoxHalf(t *testing.T) {
	var c Clipper
	// Right triangle straddling x = 0.5.
	tri := Tri(Pt(0, 0), Pt(1, 0), Pt(0, 1))
	got := c.ClipTriangleBox(tri, Box(0, 0, 0.5, 1))
	// Area left of x=0.5 within the triangle = 0.5 - area of right part.
	// Right part is a triangle with legs 0.5: area 0.125. Left = 0.375.
	if !almostEq(Polygon(got).Area(), 0.375, 1e-14) {
		t.Errorf("half clip area = %v, want 0.375", Polygon(got).Area())
	}
}

func TestClipTriangleBoxContainsBox(t *testing.T) {
	var c Clipper
	// Large triangle containing the whole box: result is the box itself.
	tri := Tri(Pt(-10, -10), Pt(10, -10), Pt(0, 10))
	got := c.ClipTriangleBox(tri, Box(0, 0, 1, 1))
	if !almostEq(Polygon(got).Area(), 1, 1e-12) {
		t.Errorf("clip area = %v, want 1", Polygon(got).Area())
	}
}

func TestClipCWInputHandled(t *testing.T) {
	var c Clipper
	cw := Tri(Pt(0, 0), Pt(0, 1), Pt(1, 0)) // clockwise
	got := c.ClipTriangleBox(cw, Box(0, 0, 1, 1))
	if !almostEq(Polygon(got).Area(), 0.5, 1e-14) {
		t.Errorf("CW triangle clip area = %v, want 0.5", Polygon(got).Area())
	}
}

func TestClipConvexGeneral(t *testing.T) {
	var c Clipper
	sq1 := Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
	sq2 := Polygon{Pt(0.5, 0.5), Pt(1.5, 0.5), Pt(1.5, 1.5), Pt(0.5, 1.5)}
	got := append(Polygon(nil), c.ClipConvex(sq1, sq2)...)
	if !almostEq(got.Area(), 0.25, 1e-14) {
		t.Errorf("overlap area = %v, want 0.25", got.Area())
	}
	// Clip against itself returns the same area.
	self := c.ClipConvex(sq1, sq1)
	if !almostEq(Polygon(self).Area(), 1, 1e-14) {
		t.Errorf("self clip area = %v, want 1", Polygon(self).Area())
	}
}

func TestSplitFan(t *testing.T) {
	square := Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
	tris := SplitFan(square, nil, 0)
	if len(tris) != 2 {
		t.Fatalf("got %d triangles, want 2", len(tris))
	}
	total := 0.0
	for _, tr := range tris {
		if tr.SignedArea() <= 0 {
			t.Error("fan triangle not CCW")
		}
		total += tr.Area()
	}
	if !almostEq(total, 1, 1e-14) {
		t.Errorf("fan area = %v", total)
	}
	// Degenerate and tiny polygons produce nothing.
	if got := SplitFan(Polygon{Pt(0, 0), Pt(1, 0)}, nil, 0); len(got) != 0 {
		t.Error("2-gon should produce no triangles")
	}
	sliver := Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1e-18)}
	if got := SplitFan(sliver, nil, 1e-16); len(got) != 0 {
		t.Error("sliver below minArea should be dropped")
	}
}

func TestClipperReuseNoCorruption(t *testing.T) {
	var c Clipper
	tri := Tri(Pt(0, 0), Pt(1, 0), Pt(0, 1))
	a1 := Polygon(c.ClipTriangleBox(tri, Box(0, 0, 1, 1))).Area()
	for i := 0; i < 100; i++ {
		c.ClipTriangleBox(tri, Box(0.1, 0.1, 0.9, 0.9))
	}
	a2 := Polygon(c.ClipTriangleBox(tri, Box(0, 0, 1, 1))).Area()
	if a1 != a2 {
		t.Errorf("reuse changed result: %v vs %v", a1, a2)
	}
}
