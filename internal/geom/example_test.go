package geom_test

import (
	"fmt"

	"unstencil/internal/geom"
)

// Clipping a mesh triangle against one stencil square — the post-processor's
// innermost geometric operation.
func ExampleClipper_ClipTriangleBox() {
	var c geom.Clipper
	tri := geom.Tri(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1))
	cell := geom.Box(0.25, 0.25, 0.75, 0.75)
	poly := geom.Polygon(c.ClipTriangleBox(tri, cell))
	fmt.Printf("vertices: %d\n", len(poly))
	fmt.Printf("area: %.4f\n", poly.Area())
	// Output:
	// vertices: 4
	// area: 0.1250
}

func ExampleSplitFan() {
	square := geom.Polygon{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	tris := geom.SplitFan(square, nil, 0)
	total := 0.0
	for _, t := range tris {
		total += t.Area()
	}
	fmt.Printf("%d triangles, total area %.2f\n", len(tris), total)
	// Output:
	// 2 triangles, total area 1.00
}

func ExampleTriangle_Barycentric() {
	tri := geom.Tri(geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(0, 2))
	wa, wb, wc := tri.Barycentric(geom.Pt(0.5, 0.5))
	fmt.Printf("%.2f %.2f %.2f\n", wa, wb, wc)
	// Output:
	// 0.50 0.25 0.25
}
