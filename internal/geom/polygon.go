package geom

// Polygon is a simple polygon stored as a CCW vertex loop. The clipping
// routines in this package only produce convex polygons, but Area and
// Centroid are valid for any simple CCW polygon.
type Polygon []Point

// Area returns the (positive) area of a CCW polygon via the shoelace
// formula. For polygons with fewer than 3 vertices it returns 0.
func (p Polygon) Area() float64 {
	if len(p) < 3 {
		return 0
	}
	sum := 0.0
	for i, a := range p {
		b := p[(i+1)%len(p)]
		sum += a.Cross(b)
	}
	return sum / 2
}

// Centroid returns the area centroid of a CCW polygon. Degenerate polygons
// (area ~ 0) fall back to the vertex average.
func (p Polygon) Centroid() Point {
	a := p.Area()
	if a < 1e-300 {
		var c Point
		for _, v := range p {
			c = c.Add(v)
		}
		if len(p) > 0 {
			c = c.Scale(1 / float64(len(p)))
		}
		return c
	}
	var cx, cy float64
	for i, v := range p {
		w := p[(i+1)%len(p)]
		cr := v.Cross(w)
		cx += (v.X + w.X) * cr
		cy += (v.Y + w.Y) * cr
	}
	f := 1 / (6 * a)
	return Point{cx * f, cy * f}
}

// Bounds returns the bounding box of the polygon.
func (p Polygon) Bounds() AABB {
	b := EmptyAABB()
	for _, v := range p {
		b = b.Extend(v)
	}
	return b
}

// Translate returns a copy of p shifted by d.
func (p Polygon) Translate(d Point) Polygon {
	out := make(Polygon, len(p))
	for i, v := range p {
		out[i] = v.Add(d)
	}
	return out
}

// Clipper clips subject polygons against a fixed convex clip region using
// the Sutherland–Hodgman reentrant clipping algorithm (Sutherland & Hodgman,
// CACM 1974; Algorithm 1 in the paper). A Clipper is reusable: it owns the
// scratch buffers, so repeated Clip calls perform no allocations once the
// buffers have grown to a steady size. A Clipper is not safe for concurrent
// use; create one per worker.
type Clipper struct {
	in, out Polygon
}

// clipEdge holds one directed edge (a -> b) of the CCW clip polygon.
// Points strictly left of the edge are inside.
type clipEdge struct {
	a, b Point
}

func (e clipEdge) inside(p Point) bool {
	// >= keeps points exactly on the boundary, matching the paper's
	// treatment of stencil-node breaks: zero-area slivers are later
	// discarded by the area filter in SplitFan.
	return Orient(e.a, e.b, p) >= 0
}

// intersect returns the intersection of segment (s, p) with the infinite
// line through the clip edge. The caller guarantees s and p are on opposite
// sides, so the denominator is nonzero up to roundoff.
func (e clipEdge) intersect(s, p Point) Point {
	d := p.Sub(s)
	n := e.b.Sub(e.a)
	den := n.Cross(d)
	if den == 0 {
		return s // parallel within roundoff: either endpoint is on the line
	}
	t := n.Cross(s.Sub(e.a)) / -den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return Point{s.X + t*d.X, s.Y + t*d.Y}
}

// ClipConvex intersects the subject polygon with the convex CCW clip
// polygon and returns the resulting convex polygon (empty when they do not
// overlap). Degenerate clip regions — fewer than 3 vertices, zero or NaN
// area — yield an empty result rather than propagating NaN through the
// half-plane tests. The returned slice aliases the Clipper's internal
// buffer and is only valid until the next call.
func (c *Clipper) ClipConvex(subject, clip Polygon) Polygon {
	if len(clip) < 3 || !(clip.Area() > 0) {
		return c.out[:0]
	}
	c.out = append(c.out[:0], subject...)
	n := len(clip)
	for i := 0; i < n && len(c.out) > 0; i++ {
		e := clipEdge{clip[i], clip[(i+1)%n]}
		c.in = append(c.in[:0], c.out...)
		c.out = c.out[:0]
		s := c.in[len(c.in)-1]
		sIn := e.inside(s)
		for _, p := range c.in {
			pIn := e.inside(p)
			if pIn {
				if !sIn {
					c.out = append(c.out, e.intersect(s, p))
				}
				c.out = append(c.out, p)
			} else if sIn {
				c.out = append(c.out, e.intersect(s, p))
			}
			s, sIn = p, pIn
		}
	}
	return c.out
}

// ClipTriangleBox intersects triangle t with axis-aligned box b. This is the
// hot path of the post-processor (stencil square × mesh element), so the box
// clip is specialised: each of the four half-plane tests is a single
// coordinate comparison. Degenerate inputs — a zero-area (collinear or
// NaN-cornered) triangle, or an empty/inverted/NaN box — return an empty
// polygon: a region that cannot contain area must never surface as NaN
// downstream. The returned polygon aliases internal buffers.
func (c *Clipper) ClipTriangleBox(t Triangle, b AABB) Polygon {
	if !(t.Area() > 0) || !(b.Min.X < b.Max.X) || !(b.Min.Y < b.Max.Y) {
		return c.out[:0]
	}
	t = t.CCW()
	c.out = append(c.out[:0], t.A, t.B, t.C)
	c.clipX(b.Min.X, true)  // keep x >= min
	c.clipX(b.Max.X, false) // keep x <= max
	c.clipY(b.Min.Y, true)  // keep y >= min
	c.clipY(b.Max.Y, false) // keep y <= max
	return c.out
}

// clipX and clipY are the specialised half-plane passes of ClipTriangleBox:
// the coordinate access is direct (no accessor indirection) and the pass
// ping-pongs the two scratch buffers instead of copying between them.

func (c *Clipper) clipX(limit float64, keepGE bool) {
	if len(c.out) == 0 {
		return
	}
	c.in, c.out = c.out, c.in[:0]
	s := c.in[len(c.in)-1]
	sv := s.X
	sIn := (sv >= limit) == keepGE || sv == limit
	for _, p := range c.in {
		pv := p.X
		pIn := (pv >= limit) == keepGE || pv == limit
		if pIn != sIn {
			// Interpolate the crossing on this axis.
			tt := (limit - sv) / (pv - sv)
			c.out = append(c.out, Point{
				s.X + tt*(p.X-s.X),
				s.Y + tt*(p.Y-s.Y),
			})
		}
		if pIn {
			c.out = append(c.out, p)
		}
		s, sv, sIn = p, pv, pIn
	}
}

func (c *Clipper) clipY(limit float64, keepGE bool) {
	if len(c.out) == 0 {
		return
	}
	c.in, c.out = c.out, c.in[:0]
	s := c.in[len(c.in)-1]
	sv := s.Y
	sIn := (sv >= limit) == keepGE || sv == limit
	for _, p := range c.in {
		pv := p.Y
		pIn := (pv >= limit) == keepGE || pv == limit
		if pIn != sIn {
			tt := (limit - sv) / (pv - sv)
			c.out = append(c.out, Point{
				s.X + tt*(p.X-s.X),
				s.Y + tt*(p.Y-s.Y),
			})
		}
		if pIn {
			c.out = append(c.out, p)
		}
		s, sv, sIn = p, pv, pIn
	}
}

// SplitFan triangulates the convex polygon p into len(p)-2 triangles fanned
// from vertex 0, appending them to dst and returning the extended slice.
// Triangles with area below minArea (slivers produced by clipping exactly on
// a boundary) are dropped; pass 0 to keep everything with positive area.
// Collinear fans and NaN-cornered triangles fail the positive-area test and
// are dropped, so degenerate clips contribute an empty region rather than
// NaN integrals.
func SplitFan(p Polygon, dst []Triangle, minArea float64) []Triangle {
	if !(minArea >= 0) {
		minArea = 0 // a NaN/negative filter must not admit slivers
	}
	for i := 1; i+1 < len(p); i++ {
		t := Triangle{p[0], p[i], p[i+1]}
		if t.Area() > minArea {
			dst = append(dst, t.CCW())
		}
	}
	return dst
}
