package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"unstencil/internal/geom"
)

func uniformPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

// clusteredPoints concentrates 80% of the points in a small disc — the
// regime where adaptive structures pay off.
func clusteredPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		if i%5 == 0 {
			pts[i] = geom.Pt(rng.Float64(), rng.Float64())
		} else {
			pts[i] = geom.Pt(0.2+rng.Float64()*0.05, 0.7+rng.Float64()*0.05)
		}
	}
	return pts
}

var builders = map[string]func([]geom.Point) Index{
	"kdtree":   func(p []geom.Point) Index { return NewKDTree(p) },
	"quadtree": func(p []geom.Point) Index { return NewQuadtree(p) },
	"bvh":      func(p []geom.Point) Index { return NewBVH(p) },
}

func sortedIDs(idx Index, b geom.AABB) []int32 {
	var ids []int32
	idx.ForEachInBox(b, func(id int32) { ids = append(ids, id) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestIndexesMatchBruteForce(t *testing.T) {
	for name, build := range builders {
		for _, gen := range []func(int, int64) []geom.Point{uniformPoints, clusteredPoints} {
			pts := gen(400, 11)
			idx := build(pts)
			ref := NewBruteForce(pts)
			if idx.Len() != 400 {
				t.Fatalf("%s: Len = %d", name, idx.Len())
			}
			rng := rand.New(rand.NewSource(3))
			for trial := 0; trial < 100; trial++ {
				x0, y0 := rng.Float64(), rng.Float64()
				b := geom.Box(x0, y0, x0+rng.Float64()*0.4, y0+rng.Float64()*0.4)
				got := sortedIDs(idx, b)
				want := sortedIDs(ref, b)
				if len(got) != len(want) {
					t.Fatalf("%s: box %v returned %d ids, want %d", name, b, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: box %v id mismatch at %d: %d vs %d",
							name, b, i, got[i], want[i])
					}
				}
				if c := idx.CountInBox(b); c != len(want) {
					t.Fatalf("%s: CountInBox %d, want %d", name, c, len(want))
				}
			}
		}
	}
}

func TestIndexesEmptyAndSingle(t *testing.T) {
	for name, build := range builders {
		empty := build(nil)
		n := 0
		empty.ForEachInBox(geom.Box(0, 0, 1, 1), func(int32) { n++ })
		if n != 0 || empty.Len() != 0 {
			t.Errorf("%s: empty index misbehaves", name)
		}
		single := build([]geom.Point{geom.Pt(0.5, 0.5)})
		if single.CountInBox(geom.Box(0, 0, 1, 1)) != 1 {
			t.Errorf("%s: single point not found", name)
		}
		if single.CountInBox(geom.Box(0.6, 0.6, 1, 1)) != 0 {
			t.Errorf("%s: phantom point", name)
		}
	}
}

func TestIndexesDuplicatePoints(t *testing.T) {
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Pt(0.25, 0.25)
	}
	for name, build := range builders {
		idx := build(pts)
		if got := idx.CountInBox(geom.Box(0, 0, 0.5, 0.5)); got != 50 {
			t.Errorf("%s: found %d of 50 duplicates", name, got)
		}
	}
}

func TestQueryBoundaryInclusive(t *testing.T) {
	pts := []geom.Point{geom.Pt(0.5, 0.5)}
	b := geom.Box(0.5, 0.5, 1, 1) // point exactly on the corner
	for name, build := range builders {
		if got := build(pts).CountInBox(b); got != 1 {
			t.Errorf("%s: boundary point excluded", name)
		}
	}
}

func benchQueries(b *testing.B, idx Index, window float64) {
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		x0, y0 := rng.Float64()*(1-window), rng.Float64()*(1-window)
		n += idx.CountInBox(geom.Box(x0, y0, x0+window, y0+window))
	}
	_ = n
}

// The design-choice ablation: compare query cost of every structure on the
// uniform square-window workload the post-processor generates. Run with
//
//	go test -bench Index ./internal/spatial/
func BenchmarkIndexKDTree(b *testing.B) { benchQueries(b, NewKDTree(uniformPoints(20000, 1)), 0.05) }
func BenchmarkIndexQuadtree(b *testing.B) {
	benchQueries(b, NewQuadtree(uniformPoints(20000, 1)), 0.05)
}
func BenchmarkIndexBVH(b *testing.B) { benchQueries(b, NewBVH(uniformPoints(20000, 1)), 0.05) }

func BenchmarkBuildKDTree(b *testing.B) {
	pts := uniformPoints(20000, 1)
	for i := 0; i < b.N; i++ {
		NewKDTree(pts)
	}
}

func BenchmarkBuildQuadtree(b *testing.B) {
	pts := uniformPoints(20000, 1)
	for i := 0; i < b.N; i++ {
		NewQuadtree(pts)
	}
}

func BenchmarkBuildBVH(b *testing.B) {
	pts := uniformPoints(20000, 1)
	for i := 0; i < b.N; i++ {
		NewBVH(pts)
	}
}

// Order must be a permutation of the point ids, and its depth-first
// SW/SE/NW/NE traversal must keep spatial neighbours close in the
// sequence: for a regular grid, the average index distance between
// adjacent grid cells should be far below the row-major worst case.
func TestQuadtreeOrderPermutation(t *testing.T) {
	pts := clusteredPoints(777, 41)
	order := NewQuadtree(pts).Order()
	if len(order) != len(pts) {
		t.Fatalf("order has %d entries, want %d", len(order), len(pts))
	}
	seen := make([]bool, len(pts))
	for _, id := range order {
		if id < 0 || int(id) >= len(pts) {
			t.Fatalf("id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("id %d appears twice", id)
		}
		seen[id] = true
	}
}

func TestQuadtreeOrderLocality(t *testing.T) {
	const n = 32
	pts := make([]geom.Point, 0, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			pts = append(pts, geom.Pt((float64(i)+0.5)/n, (float64(j)+0.5)/n))
		}
	}
	order := NewQuadtree(pts).Order()
	rank := make([]int, len(pts))
	for r, id := range order {
		rank[id] = r
	}
	// Mean |rank(p) − rank(right neighbour)| over the grid. Row-major
	// order scores 1 horizontally but n vertically; a space-filling
	// traversal keeps both directions bounded well below n/2 on average.
	var sum, cnt float64
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			id := j*n + i
			if i+1 < n {
				sum += math.Abs(float64(rank[id] - rank[id+1]))
				cnt++
			}
			if j+1 < n {
				sum += math.Abs(float64(rank[id] - rank[id+n]))
				cnt++
			}
		}
	}
	if mean := sum / cnt; mean > float64(n) {
		t.Errorf("mean neighbour index distance %.1f exceeds %d — ordering is not local", mean, n)
	}
	// Empty tree: no panic, empty order.
	if got := NewQuadtree(nil).Order(); len(got) != 0 {
		t.Errorf("empty tree order has %d entries", len(got))
	}
}
