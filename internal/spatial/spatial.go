// Package spatial provides the alternative spatial indices the paper
// considers and rejects in favour of the uniform hash grid (§3: "There
// exist a number of data structures used for spatially decomposing an
// unstructured grid or mesh ... such as k-d trees, uniform hash grids,
// quad/oct trees, and bounding volume hierarchies. Given that the stencils
// ... are square and grid points are roughly uniformly distributed, a
// uniform hash grid was the most applicable choice").
//
// All three structures — k-d tree, region quadtree, and a Morton-ordered
// BVH — answer the same axis-aligned box queries as grid.HashGrid, so the
// benchmarks in this package quantify that design decision: for uniformly
// distributed points and square query windows the hash grid wins on both
// construction and query cost, while the tree structures only catch up on
// strongly clustered inputs.
package spatial

import (
	"unstencil/internal/geom"
)

// Index answers "call fn for every item whose location is inside box b"
// queries over a fixed set of point-like items. Implementations may visit
// items in any order; each matching item is visited exactly once, and no
// non-matching item is visited (unlike the hash grid, these are exact).
type Index interface {
	// ForEachInBox calls fn for every item located inside b (boundary
	// inclusive).
	ForEachInBox(b geom.AABB, fn func(id int32))
	// CountInBox returns the number of items inside b.
	CountInBox(b geom.AABB) int
	// Len returns the number of indexed items.
	Len() int
}

// bruteForce is the reference implementation used by tests.
type bruteForce struct {
	pts []geom.Point
}

// NewBruteForce wraps a point set in a linear-scan Index; it exists so
// benchmarks and tests can compare against the trivially correct answer.
func NewBruteForce(pts []geom.Point) Index { return &bruteForce{pts: pts} }

func (s *bruteForce) ForEachInBox(b geom.AABB, fn func(id int32)) {
	for i, p := range s.pts {
		if b.Contains(p) {
			fn(int32(i))
		}
	}
}

func (s *bruteForce) CountInBox(b geom.AABB) int {
	n := 0
	for _, p := range s.pts {
		if b.Contains(p) {
			n++
		}
	}
	return n
}

func (s *bruteForce) Len() int { return len(s.pts) }
