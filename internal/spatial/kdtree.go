package spatial

import (
	"sort"

	"unstencil/internal/geom"
)

// KDTree is a balanced 2D k-d tree over a fixed point set, built by median
// splits on alternating axes. Nodes are stored in a flat array (heap
// layout: children of n are 2n+1 and 2n+2), so traversal is pointer-free.
type KDTree struct {
	pts []geom.Point
	// perm holds item ids in tree order; node n owns perm[span[n].lo :
	// span[n].hi] with the splitting item at span[n].mid.
	perm []int32
	// nodes[n] is the split value on the node's axis (depth%2: 0 = x,
	// 1 = y). Leaves have no split recorded.
	spans []kdSpan
}

type kdSpan struct {
	lo, hi int32 // item range in perm
	split  float64
	leaf   bool
}

// kdLeafSize is the largest bucket a node keeps unsplit; small buckets keep
// the tree shallow without hurting query pruning.
const kdLeafSize = 8

// NewKDTree builds the tree in O(n log² n).
func NewKDTree(pts []geom.Point) *KDTree {
	t := &KDTree{
		pts:  pts,
		perm: make([]int32, len(pts)),
	}
	for i := range t.perm {
		t.perm[i] = int32(i)
	}
	// Upper bound on heap nodes for n items with the chosen leaf size.
	cap := 1
	for cap < (len(pts)/kdLeafSize+2)*4 {
		cap *= 2
	}
	t.spans = make([]kdSpan, 2*cap)
	t.build(0, 0, int32(len(pts)), 0)
	return t
}

func (t *KDTree) build(node int, lo, hi int32, depth int) {
	if node >= len(t.spans) {
		grown := make([]kdSpan, 2*node+2)
		copy(grown, t.spans)
		t.spans = grown
	}
	if hi-lo <= kdLeafSize {
		t.spans[node] = kdSpan{lo: lo, hi: hi, leaf: true}
		return
	}
	items := t.perm[lo:hi]
	axis := depth % 2
	sort.Slice(items, func(i, j int) bool {
		a, b := t.pts[items[i]], t.pts[items[j]]
		if axis == 0 {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	mid := (hi - lo) / 2
	var split float64
	if axis == 0 {
		split = t.pts[items[mid]].X
	} else {
		split = t.pts[items[mid]].Y
	}
	t.spans[node] = kdSpan{lo: lo, hi: hi, split: split}
	t.build(2*node+1, lo, lo+mid, depth+1)
	t.build(2*node+2, lo+mid, hi, depth+1)
}

// ForEachInBox implements Index.
func (t *KDTree) ForEachInBox(b geom.AABB, fn func(id int32)) {
	if len(t.pts) == 0 {
		return
	}
	t.query(0, 0, b, fn)
}

func (t *KDTree) query(node, depth int, b geom.AABB, fn func(id int32)) {
	sp := t.spans[node]
	if sp.leaf {
		for _, id := range t.perm[sp.lo:sp.hi] {
			if b.Contains(t.pts[id]) {
				fn(id)
			}
		}
		return
	}
	var lo, hi float64
	if depth%2 == 0 {
		lo, hi = b.Min.X, b.Max.X
	} else {
		lo, hi = b.Min.Y, b.Max.Y
	}
	if lo <= sp.split {
		t.query(2*node+1, depth+1, b, fn)
	}
	if hi >= sp.split {
		t.query(2*node+2, depth+1, b, fn)
	}
}

// CountInBox implements Index.
func (t *KDTree) CountInBox(b geom.AABB) int {
	n := 0
	t.ForEachInBox(b, func(int32) { n++ })
	return n
}

// Len implements Index.
func (t *KDTree) Len() int { return len(t.pts) }
