package spatial

import (
	"sort"

	"unstencil/internal/geom"
)

// BVH is a bounding-volume hierarchy over points: items are sorted along a
// Morton (Z-order) curve and grouped into fixed-size leaves; internal nodes
// store the bounding box of their subtree. This is the flat "LBVH"
// construction common in ray tracing, restricted to points.
type BVH struct {
	pts   []geom.Point
	perm  []int32
	nodes []bvhNode
}

type bvhNode struct {
	bounds geom.AABB
	// left/right index nodes; leaf nodes use lo/hi into perm instead.
	left, right int32
	lo, hi      int32
	leaf        bool
}

const bvhLeafSize = 8

// NewBVH builds the hierarchy in O(n log n).
func NewBVH(pts []geom.Point) *BVH {
	t := &BVH{pts: pts, perm: make([]int32, len(pts))}
	for i := range t.perm {
		t.perm[i] = int32(i)
	}
	if len(pts) == 0 {
		return t
	}
	b := geom.EmptyAABB()
	for _, p := range pts {
		b = b.Extend(p)
	}
	sx, sy := b.Width(), b.Height()
	if sx == 0 {
		sx = 1
	}
	if sy == 0 {
		sy = 1
	}
	key := func(id int32) uint64 {
		p := t.pts[id]
		x := uint32((p.X - b.Min.X) / sx * 65535)
		y := uint32((p.Y - b.Min.Y) / sy * 65535)
		return interleave(x) | interleave(y)<<1
	}
	sort.Slice(t.perm, func(i, j int) bool { return key(t.perm[i]) < key(t.perm[j]) })
	t.buildRange(0, int32(len(pts)))
	return t
}

func interleave(v uint32) uint64 {
	z := uint64(v)
	z = (z | z<<16) & 0x0000ffff0000ffff
	z = (z | z<<8) & 0x00ff00ff00ff00ff
	z = (z | z<<4) & 0x0f0f0f0f0f0f0f0f
	z = (z | z<<2) & 0x3333333333333333
	z = (z | z<<1) & 0x5555555555555555
	return z
}

// buildRange appends the subtree for perm[lo:hi] and returns its node id.
func (t *BVH) buildRange(lo, hi int32) int32 {
	node := int32(len(t.nodes))
	t.nodes = append(t.nodes, bvhNode{})
	if hi-lo <= bvhLeafSize {
		b := geom.EmptyAABB()
		for _, id := range t.perm[lo:hi] {
			b = b.Extend(t.pts[id])
		}
		t.nodes[node] = bvhNode{bounds: b, lo: lo, hi: hi, leaf: true}
		return node
	}
	mid := (lo + hi) / 2
	left := t.buildRange(lo, mid)
	right := t.buildRange(mid, hi)
	t.nodes[node] = bvhNode{
		bounds: t.nodes[left].bounds.Union(t.nodes[right].bounds),
		left:   left,
		right:  right,
	}
	return node
}

// ForEachInBox implements Index.
func (t *BVH) ForEachInBox(b geom.AABB, fn func(id int32)) {
	if len(t.nodes) == 0 {
		return
	}
	t.query(0, b, fn)
}

func (t *BVH) query(node int32, b geom.AABB, fn func(id int32)) {
	n := &t.nodes[node]
	if !n.bounds.Intersects(b) {
		return
	}
	if n.leaf {
		for _, id := range t.perm[n.lo:n.hi] {
			if b.Contains(t.pts[id]) {
				fn(id)
			}
		}
		return
	}
	t.query(n.left, b, fn)
	t.query(n.right, b, fn)
}

// CountInBox implements Index.
func (t *BVH) CountInBox(b geom.AABB) int {
	n := 0
	t.ForEachInBox(b, func(int32) { n++ })
	return n
}

// Len implements Index.
func (t *BVH) Len() int { return len(t.pts) }
