package spatial

import (
	"unstencil/internal/geom"
)

// Quadtree is a region quadtree over the bounding box of the input points.
// Internal nodes split their square into four children; leaves hold up to
// qtLeafSize items. Unlike the k-d tree it adapts its depth to local
// density, which is what makes it competitive on clustered inputs.
type Quadtree struct {
	pts   []geom.Point
	root  int32
	nodes []qtNode
	items []int32 // leaf item storage, contiguous per leaf
}

type qtNode struct {
	bounds geom.AABB
	// children[0..3] index nodes; -1 for absent. A node with all -1
	// children is a leaf owning items[lo:hi].
	children [4]int32
	lo, hi   int32
	leaf     bool
}

const (
	qtLeafSize = 16
	qtMaxDepth = 24
)

// NewQuadtree builds the tree in O(n log n) expected time.
func NewQuadtree(pts []geom.Point) *Quadtree {
	b := geom.EmptyAABB()
	for _, p := range pts {
		b = b.Extend(p)
	}
	if b.Empty() {
		b = geom.Box(0, 0, 1, 1)
	}
	// Square the box so children stay square.
	side := b.Width()
	if b.Height() > side {
		side = b.Height()
	}
	if side == 0 {
		side = 1
	}
	b = geom.AABB{Min: b.Min, Max: geom.Pt(b.Min.X+side, b.Min.Y+side)}

	t := &Quadtree{pts: pts}
	ids := make([]int32, len(pts))
	for i := range ids {
		ids[i] = int32(i)
	}
	t.root = t.build(b, ids, 0)
	return t
}

func (t *Quadtree) build(b geom.AABB, ids []int32, depth int) int32 {
	node := int32(len(t.nodes))
	t.nodes = append(t.nodes, qtNode{bounds: b, children: [4]int32{-1, -1, -1, -1}})
	if len(ids) <= qtLeafSize || depth >= qtMaxDepth {
		lo := int32(len(t.items))
		t.items = append(t.items, ids...)
		t.nodes[node].lo = lo
		t.nodes[node].hi = int32(len(t.items))
		t.nodes[node].leaf = true
		return node
	}
	c := b.Center()
	var quads [4][]int32
	for _, id := range ids {
		p := t.pts[id]
		q := 0
		if p.X > c.X {
			q |= 1
		}
		if p.Y > c.Y {
			q |= 2
		}
		quads[q] = append(quads[q], id)
	}
	childBounds := [4]geom.AABB{
		{Min: b.Min, Max: c},
		{Min: geom.Pt(c.X, b.Min.Y), Max: geom.Pt(b.Max.X, c.Y)},
		{Min: geom.Pt(b.Min.X, c.Y), Max: geom.Pt(c.X, b.Max.Y)},
		{Min: c, Max: b.Max},
	}
	for q := 0; q < 4; q++ {
		if len(quads[q]) == 0 {
			continue
		}
		child := t.build(childBounds[q], quads[q], depth+1)
		t.nodes[node].children[q] = child
	}
	return node
}

// ForEachInBox implements Index.
func (t *Quadtree) ForEachInBox(b geom.AABB, fn func(id int32)) {
	if len(t.pts) == 0 {
		return
	}
	t.query(t.root, b, fn)
}

func (t *Quadtree) query(node int32, b geom.AABB, fn func(id int32)) {
	n := &t.nodes[node]
	if !n.bounds.Intersects(b) {
		return
	}
	if n.leaf {
		for _, id := range t.items[n.lo:n.hi] {
			if b.Contains(t.pts[id]) {
				fn(id)
			}
		}
		return
	}
	for _, c := range n.children {
		if c >= 0 {
			t.query(c, b, fn)
		}
	}
}

// CountInBox implements Index.
func (t *Quadtree) CountInBox(b geom.AABB) int {
	n := 0
	t.ForEachInBox(b, func(int32) { n++ })
	return n
}

// Len implements Index.
func (t *Quadtree) Len() int { return len(t.pts) }

// Order returns a permutation of the item ids in depth-first traversal
// order, visiting the four children of each node in SW, SE, NW, NE
// sequence — the Z-order (Morton) curve, adapted to local density by the
// tree's subdivision. Spatially neighbouring points land at neighbouring
// positions in the permutation, which is what the assembled-operator path
// (internal/operator) uses to order its CSR rows: consecutive rows then
// gather coefficient blocks of nearby elements, keeping the SpMV's column
// accesses cache-resident. This is the production role the paper's §3
// index comparison left the quadtree without (the hash grid wins the box
// queries; see the spatial experiment and DESIGN.md §11).
func (t *Quadtree) Order() []int32 {
	out := make([]int32, 0, len(t.pts))
	if len(t.pts) == 0 {
		return out
	}
	var walk func(node int32)
	walk = func(node int32) {
		n := &t.nodes[node]
		if n.leaf {
			out = append(out, t.items[n.lo:n.hi]...)
			return
		}
		for _, c := range n.children {
			if c >= 0 {
				walk(c)
			}
		}
	}
	walk(t.root)
	return out
}
