// Package quadrature provides Gauss–Legendre rules on intervals, tensor
// rules on rectangles, and collapsed (Duffy) rules on triangles. These rules
// integrate the piecewise-polynomial integrands of SIAC post-processing
// exactly: within a single stencil square × mesh element sub-region the
// integrand is a polynomial, so a rule of sufficient degree makes Eq. (2) of
// the paper exact up to roundoff.
package quadrature

import (
	"fmt"
	"math"
	"sync"

	"unstencil/internal/geom"
)

// Rule1D is a quadrature rule on [-1, 1].
type Rule1D struct {
	Nodes   []float64
	Weights []float64
}

var (
	glMu    sync.Mutex
	glCache = map[int]Rule1D{}
)

// GaussLegendre returns the n-point Gauss–Legendre rule on [-1, 1], exact
// for polynomials of degree 2n-1. Rules are cached; the returned slices
// must not be modified.
func GaussLegendre(n int) Rule1D {
	if n < 1 {
		panic(fmt.Sprintf("quadrature: GaussLegendre needs n >= 1, got %d", n))
	}
	glMu.Lock()
	defer glMu.Unlock()
	if r, ok := glCache[n]; ok {
		return r
	}
	r := computeGaussLegendre(n)
	glCache[n] = r
	return r
}

// computeGaussLegendre finds the roots of P_n by Newton iteration from the
// Chebyshev-like initial guesses, the standard approach.
func computeGaussLegendre(n int) Rule1D {
	nodes := make([]float64, n)
	weights := make([]float64, n)
	m := (n + 1) / 2
	for i := 0; i < m; i++ {
		// Initial guess (Abramowitz & Stegun 25.4.30 vicinity).
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p0, p1 := 1.0, 0.0
			// Legendre recurrence: (j+1)P_{j+1} = (2j+1)xP_j - jP_{j-1}.
			for j := 0; j < n; j++ {
				p2 := p1
				p1 = p0
				p0 = ((2*float64(j)+1)*x*p1 - float64(j)*p2) / (float64(j) + 1)
			}
			// Derivative via P'_n = n(xP_n - P_{n-1})/(x^2-1).
			pp = float64(n) * (x*p0 - p1) / (x*x - 1)
			dx := p0 / pp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		nodes[i] = -x
		nodes[n-1-i] = x
		w := 2 / ((1 - x*x) * pp * pp)
		weights[i] = w
		weights[n-1-i] = w
	}
	if n%2 == 1 {
		nodes[n/2] = 0
	}
	return Rule1D{Nodes: nodes, Weights: weights}
}

// Interval returns the rule mapped to [a, b].
func (r Rule1D) Interval(a, b float64) Rule1D {
	h := (b - a) / 2
	mid := (a + b) / 2
	out := Rule1D{
		Nodes:   make([]float64, len(r.Nodes)),
		Weights: make([]float64, len(r.Weights)),
	}
	for i, x := range r.Nodes {
		out.Nodes[i] = mid + h*x
		out.Weights[i] = r.Weights[i] * h
	}
	return out
}

// Integrate1D integrates f over [a, b] with an n-point Gauss rule.
func Integrate1D(f func(float64) float64, a, b float64, n int) float64 {
	r := GaussLegendre(n)
	h := (b - a) / 2
	mid := (a + b) / 2
	s := 0.0
	for i, x := range r.Nodes {
		s += r.Weights[i] * f(mid+h*x)
	}
	return s * h
}

// Rule2D is a quadrature rule over a 2D reference domain. For triangle
// rules the reference domain is the unit triangle {(r,s): r,s>=0, r+s<=1}
// and the weights sum to 1/2 (its area).
type Rule2D struct {
	Points  []geom.Point
	Weights []float64
}

// Len returns the number of quadrature points.
func (r Rule2D) Len() int { return len(r.Points) }

// TensorRectangle returns an n×n Gauss rule on the rectangle b, exact for
// polynomials of degree 2n-1 in each variable.
func TensorRectangle(b geom.AABB, n int) Rule2D {
	gx := GaussLegendre(n).Interval(b.Min.X, b.Max.X)
	gy := GaussLegendre(n).Interval(b.Min.Y, b.Max.Y)
	out := Rule2D{
		Points:  make([]geom.Point, 0, n*n),
		Weights: make([]float64, 0, n*n),
	}
	for i, x := range gx.Nodes {
		for j, y := range gy.Nodes {
			out.Points = append(out.Points, geom.Pt(x, y))
			out.Weights = append(out.Weights, gx.Weights[i]*gy.Weights[j])
		}
	}
	return out
}

var (
	triMu    sync.Mutex
	triCache = map[int]Rule2D{}
)

// TriangleForDegree returns a rule on the unit reference triangle exact for
// bivariate polynomials of total degree <= deg. It is built by the Duffy
// (collapsed-coordinate) transform of a tensor Gauss rule: the substitution
// r = u(1-v), s = v turns a degree-d polynomial into polynomials of degree
// <= d in u and <= d+1 in v (including the (1-v) Jacobian), so n =
// ceil((deg+2)/2) Gauss points per direction suffice. Rules are cached; do
// not modify the returned slices.
func TriangleForDegree(deg int) Rule2D {
	if deg < 0 {
		deg = 0
	}
	triMu.Lock()
	defer triMu.Unlock()
	if r, ok := triCache[deg]; ok {
		return r
	}
	n := (deg + 3) / 2 // ceil((deg+2)/2)
	g := GaussLegendre(n).Interval(0, 1)
	out := Rule2D{
		Points:  make([]geom.Point, 0, n*n),
		Weights: make([]float64, 0, n*n),
	}
	for i, u := range g.Nodes {
		for j, v := range g.Nodes {
			out.Points = append(out.Points, geom.Pt(u*(1-v), v))
			out.Weights = append(out.Weights, g.Weights[i]*g.Weights[j]*(1-v))
		}
	}
	triCache[deg] = out
	return out
}

// OnTriangle maps a reference-triangle rule to the physical triangle t,
// returning physical points and weights such that
//
//	∫_t f ≈ Σ w_i f(x_i).
//
// The reference weights sum to 1/2; the affine Jacobian is 2·Area(t).
func (r Rule2D) OnTriangle(t geom.Triangle) Rule2D {
	jac := 2 * t.Area()
	out := Rule2D{
		Points:  make([]geom.Point, len(r.Points)),
		Weights: make([]float64, len(r.Weights)),
	}
	for i, p := range r.Points {
		out.Points[i] = t.MapReference(p.X, p.Y)
		out.Weights[i] = r.Weights[i] * jac
	}
	return out
}

// IntegrateTriangle integrates f over the physical triangle t with a rule
// exact to the given total degree.
func IntegrateTriangle(f func(geom.Point) float64, t geom.Triangle, deg int) float64 {
	r := TriangleForDegree(deg)
	jac := 2 * t.Area()
	s := 0.0
	for i, p := range r.Points {
		s += r.Weights[i] * f(t.MapReference(p.X, p.Y))
	}
	return s * jac
}
