package quadrature_test

import (
	"fmt"

	"unstencil/internal/geom"
	"unstencil/internal/quadrature"
)

func ExampleGaussLegendre() {
	r := quadrature.GaussLegendre(2)
	// Exact for cubics: ∫_{-1}^{1} x² dx = 2/3.
	sum := 0.0
	for i, x := range r.Nodes {
		sum += r.Weights[i] * x * x
	}
	fmt.Printf("%.6f\n", sum)
	// Output:
	// 0.666667
}

func ExampleIntegrateTriangle() {
	tri := geom.Tri(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1))
	area := quadrature.IntegrateTriangle(func(geom.Point) float64 { return 1 }, tri, 0)
	fmt.Printf("%.2f\n", area)
	// Output:
	// 0.50
}
