package quadrature

import (
	"math"
	"testing"

	"unstencil/internal/geom"
)

func TestGaussLegendreSmall(t *testing.T) {
	// n=1: node 0, weight 2.
	r := GaussLegendre(1)
	if len(r.Nodes) != 1 || math.Abs(r.Nodes[0]) > 1e-15 || math.Abs(r.Weights[0]-2) > 1e-15 {
		t.Fatalf("GL(1) = %+v", r)
	}
	// n=2: nodes ±1/sqrt(3), weights 1.
	r = GaussLegendre(2)
	want := 1 / math.Sqrt(3)
	if math.Abs(r.Nodes[1]-want) > 1e-14 || math.Abs(r.Weights[0]-1) > 1e-14 {
		t.Fatalf("GL(2) = %+v", r)
	}
	// n=3: nodes 0, ±sqrt(3/5); weights 8/9, 5/9.
	r = GaussLegendre(3)
	if math.Abs(r.Nodes[2]-math.Sqrt(0.6)) > 1e-14 ||
		math.Abs(r.Weights[1]-8.0/9) > 1e-14 ||
		math.Abs(r.Weights[0]-5.0/9) > 1e-14 {
		t.Fatalf("GL(3) = %+v", r)
	}
}

func TestGaussLegendreExactness(t *testing.T) {
	// n-point rule must integrate x^m exactly for m <= 2n-1.
	for n := 1; n <= 12; n++ {
		r := GaussLegendre(n)
		for m := 0; m <= 2*n-1; m++ {
			got := 0.0
			for i, x := range r.Nodes {
				got += r.Weights[i] * math.Pow(x, float64(m))
			}
			want := 0.0
			if m%2 == 0 {
				want = 2 / float64(m+1)
			}
			if math.Abs(got-want) > 1e-13 {
				t.Errorf("n=%d m=%d: got %v want %v", n, m, got, want)
			}
		}
	}
}

func TestGaussLegendreSymmetry(t *testing.T) {
	for n := 2; n <= 20; n++ {
		r := GaussLegendre(n)
		sumW := 0.0
		for i := range r.Nodes {
			if math.Abs(r.Nodes[i]+r.Nodes[n-1-i]) > 1e-14 {
				t.Errorf("n=%d: nodes not symmetric", n)
			}
			if math.Abs(r.Weights[i]-r.Weights[n-1-i]) > 1e-14 {
				t.Errorf("n=%d: weights not symmetric", n)
			}
			sumW += r.Weights[i]
		}
		if math.Abs(sumW-2) > 1e-13 {
			t.Errorf("n=%d: weights sum to %v", n, sumW)
		}
	}
}

func TestInterval(t *testing.T) {
	r := GaussLegendre(4).Interval(1, 3)
	sum := 0.0
	for i, x := range r.Nodes {
		if x < 1 || x > 3 {
			t.Errorf("node %v outside [1,3]", x)
		}
		sum += r.Weights[i]
	}
	if math.Abs(sum-2) > 1e-14 {
		t.Errorf("interval weights sum to %v, want 2", sum)
	}
}

func TestIntegrate1D(t *testing.T) {
	got := Integrate1D(math.Sin, 0, math.Pi, 12)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("∫sin over [0,π] = %v", got)
	}
	got = Integrate1D(func(x float64) float64 { return x * x * x }, -1, 2, 3)
	if math.Abs(got-3.75) > 1e-13 {
		t.Errorf("∫x³ over [-1,2] = %v, want 3.75", got)
	}
}

func TestTensorRectangle(t *testing.T) {
	b := geom.Box(0, 1, 2, 3)
	r := TensorRectangle(b, 3)
	if r.Len() != 9 {
		t.Fatalf("Len = %d", r.Len())
	}
	sum := 0.0
	for i, p := range r.Points {
		if !b.Contains(p) {
			t.Errorf("point %v outside box", p)
		}
		sum += r.Weights[i]
	}
	if math.Abs(sum-b.Area()) > 1e-13 {
		t.Errorf("weights sum to %v, want %v", sum, b.Area())
	}
	// Exactness: ∫ x²y³ over [0,2]x[1,3] = (8/3)*(81-1)/4 = 53.333...
	got := 0.0
	for i, p := range r.Points {
		got += r.Weights[i] * p.X * p.X * p.Y * p.Y * p.Y
	}
	want := (8.0 / 3) * 20.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("∫x²y³ = %v, want %v", got, want)
	}
}

func TestTriangleRuleWeightSum(t *testing.T) {
	for deg := 0; deg <= 10; deg++ {
		r := TriangleForDegree(deg)
		sum := 0.0
		for i, p := range r.Points {
			sum += r.Weights[i]
			if p.X < 0 || p.Y < 0 || p.X+p.Y > 1+1e-14 {
				t.Errorf("deg %d: point %v outside unit triangle", deg, p)
			}
		}
		if math.Abs(sum-0.5) > 1e-14 {
			t.Errorf("deg %d: weights sum to %v, want 0.5", deg, sum)
		}
	}
}

// monomialIntegralUnitTri returns ∫ r^a s^b over the unit triangle:
// a! b! / (a+b+2)!.
func monomialIntegralUnitTri(a, b int) float64 {
	fact := func(n int) float64 {
		f := 1.0
		for i := 2; i <= n; i++ {
			f *= float64(i)
		}
		return f
	}
	return fact(a) * fact(b) / fact(a+b+2)
}

func TestTriangleRuleExactness(t *testing.T) {
	for deg := 0; deg <= 9; deg++ {
		r := TriangleForDegree(deg)
		for a := 0; a <= deg; a++ {
			for b := 0; a+b <= deg; b++ {
				got := 0.0
				for i, p := range r.Points {
					got += r.Weights[i] * math.Pow(p.X, float64(a)) * math.Pow(p.Y, float64(b))
				}
				want := monomialIntegralUnitTri(a, b)
				if math.Abs(got-want) > 1e-14 {
					t.Errorf("deg=%d r^%d s^%d: got %v want %v", deg, a, b, got, want)
				}
			}
		}
	}
}

func TestOnTriangle(t *testing.T) {
	tri := geom.Tri(geom.Pt(0.5, 0.5), geom.Pt(2.5, 1), geom.Pt(1, 3))
	r := TriangleForDegree(4).OnTriangle(tri)
	sum := 0.0
	for i, p := range r.Points {
		if !tri.CCW().Contains(p) {
			t.Errorf("mapped point %v outside triangle", p)
		}
		sum += r.Weights[i]
	}
	if math.Abs(sum-tri.Area()) > 1e-12 {
		t.Errorf("physical weights sum to %v, want area %v", sum, tri.Area())
	}
}

func TestIntegrateTriangle(t *testing.T) {
	// ∫ 1 over any triangle = area.
	tri := geom.Tri(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1))
	if got := IntegrateTriangle(func(geom.Point) float64 { return 1 }, tri, 0); math.Abs(got-0.5) > 1e-14 {
		t.Errorf("∫1 = %v", got)
	}
	// ∫ x over unit right triangle = 1/6.
	got := IntegrateTriangle(func(p geom.Point) float64 { return p.X }, tri, 1)
	if math.Abs(got-1.0/6) > 1e-14 {
		t.Errorf("∫x = %v, want 1/6", got)
	}
	// Translated triangle: ∫ (x-2)(y-3) over tri shifted by (2,3) equals
	// ∫ x y over the original = 1/24.
	shift := tri.Translate(geom.Pt(2, 3))
	got = IntegrateTriangle(func(p geom.Point) float64 { return (p.X - 2) * (p.Y - 3) }, shift, 2)
	if math.Abs(got-1.0/24) > 1e-13 {
		t.Errorf("shifted ∫xy = %v, want 1/24", got)
	}
}

func TestRuleCachesAreStable(t *testing.T) {
	a := GaussLegendre(5)
	b := GaussLegendre(5)
	if &a.Nodes[0] != &b.Nodes[0] {
		t.Error("GaussLegendre should return the cached rule")
	}
	ta := TriangleForDegree(3)
	tb := TriangleForDegree(3)
	if &ta.Points[0] != &tb.Points[0] {
		t.Error("TriangleForDegree should return the cached rule")
	}
}

func TestGaussLegendreHighOrderStable(t *testing.T) {
	// Even at n=64 the nodes must be sorted, distinct and inside (-1,1).
	r := GaussLegendre(64)
	for i := 0; i < len(r.Nodes); i++ {
		if r.Nodes[i] <= -1 || r.Nodes[i] >= 1 {
			t.Fatalf("node %d = %v out of range", i, r.Nodes[i])
		}
		if i > 0 && r.Nodes[i] <= r.Nodes[i-1] {
			t.Fatalf("nodes not increasing at %d", i)
		}
		if r.Weights[i] <= 0 {
			t.Fatalf("weight %d = %v not positive", i, r.Weights[i])
		}
	}
}

func BenchmarkTriangleForDegree6(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TriangleForDegree(6)
	}
}

func BenchmarkIntegrateTriangle(b *testing.B) {
	tri := geom.Tri(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1))
	f := func(p geom.Point) float64 { return p.X*p.Y + p.X*p.X }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		IntegrateTriangle(f, tri, 4)
	}
}
