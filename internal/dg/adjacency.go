package dg

import (
	"fmt"
	"math"

	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

// EdgeNeighbor describes what lies across one local edge of an element.
// Local edge le of element e runs from vertex le to vertex (le+1)%3.
type EdgeNeighbor struct {
	// Elem is the neighbouring element, or -1 on a true (non-periodic)
	// boundary.
	Elem int32
	// Shift translates a physical point on this edge into the neighbour's
	// frame: for a periodic wrap, ±1 in the wrapped coordinate; zero for
	// interior edges.
	Shift geom.Point
}

// Adjacency is the element-to-element connectivity of a triangulated mesh,
// with optional periodic identification of the unit square's boundary.
type Adjacency struct {
	// Neighbors[e][le] describes the element across local edge le of
	// element e.
	Neighbors [][3]EdgeNeighbor
}

// BuildAdjacency computes edge adjacency. With periodic set, boundary edges
// on x=0 pair with x=1 and y=0 with y=1; pairing requires the opposite
// boundaries to have matching vertex positions (the mesh generators in
// package mesh guarantee this) and returns an error otherwise.
func BuildAdjacency(m *mesh.Mesh, periodic bool) (*Adjacency, error) {
	type edgeKey struct{ a, b int32 }
	canon := func(a, b int32) edgeKey {
		if a > b {
			a, b = b, a
		}
		return edgeKey{a, b}
	}
	type edgeRef struct {
		elem  int32
		local int
	}
	owners := map[edgeKey][]edgeRef{}
	for e := range m.Tris {
		t := m.Tris[e]
		for le := 0; le < 3; le++ {
			k := canon(t[le], t[(le+1)%3])
			owners[k] = append(owners[k], edgeRef{int32(e), le})
		}
	}
	adj := &Adjacency{Neighbors: make([][3]EdgeNeighbor, m.NumTris())}
	for e := range adj.Neighbors {
		for le := 0; le < 3; le++ {
			adj.Neighbors[e][le] = EdgeNeighbor{Elem: -1}
		}
	}
	type bEdge struct {
		ref      edgeRef
		lo, hi   float64 // tangential interval
		boundary int     // 0: x=0, 1: x=1, 2: y=0, 3: y=1
	}
	var boundaryEdges []bEdge
	const tol = 1e-12
	for k, refs := range owners {
		switch len(refs) {
		case 2:
			adj.Neighbors[refs[0].elem][refs[0].local] = EdgeNeighbor{Elem: refs[1].elem}
			adj.Neighbors[refs[1].elem][refs[1].local] = EdgeNeighbor{Elem: refs[0].elem}
		case 1:
			if !periodic {
				continue
			}
			a, b := m.Verts[k.a], m.Verts[k.b]
			be := bEdge{ref: refs[0], boundary: -1}
			switch {
			case math.Abs(a.X) < tol && math.Abs(b.X) < tol:
				be.boundary, be.lo, be.hi = 0, math.Min(a.Y, b.Y), math.Max(a.Y, b.Y)
			case math.Abs(a.X-1) < tol && math.Abs(b.X-1) < tol:
				be.boundary, be.lo, be.hi = 1, math.Min(a.Y, b.Y), math.Max(a.Y, b.Y)
			case math.Abs(a.Y) < tol && math.Abs(b.Y) < tol:
				be.boundary, be.lo, be.hi = 2, math.Min(a.X, b.X), math.Max(a.X, b.X)
			case math.Abs(a.Y-1) < tol && math.Abs(b.Y-1) < tol:
				be.boundary, be.lo, be.hi = 3, math.Min(a.X, b.X), math.Max(a.X, b.X)
			default:
				return nil, fmt.Errorf("dg: boundary edge %v-%v lies on no domain side", a, b)
			}
			boundaryEdges = append(boundaryEdges, be)
		default:
			return nil, fmt.Errorf("dg: edge shared by %d elements (non-manifold mesh)", len(refs))
		}
	}
	if !periodic {
		return adj, nil
	}
	// Pair opposite boundaries by tangential interval.
	match := func(side, opposite int, shift geom.Point) error {
		type interval struct{ lo, hi float64 }
		byInterval := map[interval]edgeRef{}
		quant := func(v float64) float64 { return math.Round(v*1e9) / 1e9 }
		for _, be := range boundaryEdges {
			if be.boundary == opposite {
				byInterval[interval{quant(be.lo), quant(be.hi)}] = be.ref
			}
		}
		for _, be := range boundaryEdges {
			if be.boundary != side {
				continue
			}
			other, ok := byInterval[interval{quant(be.lo), quant(be.hi)}]
			if !ok {
				return fmt.Errorf("dg: periodic pairing failed for boundary edge [%g, %g] on side %d (opposite boundary discretisation does not match)",
					be.lo, be.hi, side)
			}
			adj.Neighbors[be.ref.elem][be.ref.local] = EdgeNeighbor{Elem: other.elem, Shift: shift}
			adj.Neighbors[other.elem][other.local] = EdgeNeighbor{Elem: be.ref.elem, Shift: shift.Scale(-1)}
		}
		return nil
	}
	if err := match(0, 1, geom.Pt(1, 0)); err != nil {
		return nil, err
	}
	if err := match(2, 3, geom.Pt(0, 1)); err != nil {
		return nil, err
	}
	return adj, nil
}
