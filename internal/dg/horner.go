package dg

import (
	"fmt"
	"sync"

	"unstencil/internal/linalg"
)

// This file implements the post-processor's per-element Horner fields: each
// element's modal Dubiner expansion is collapsed once, at evaluator-build
// time, into plain monomial coefficients in the reference coordinates, so
// the hot loop evaluates u(r, s) with a single bivariate Horner pass instead
// of rebuilding the shared Jacobi recurrences (EvalAll) and taking an N-term
// dot product at every quadrature point.
//
// Monomial ordering: coefficients are grouped by the s-power b ascending,
// and within a group by the r-power a ascending, i.e.
//
//	1, r, r², …, r^P,  s, s·r, …, s·r^{P−1},  …,  s^P
//
// which lets the evaluator run Horner in s over inner Horner passes in r
// without any index table.
//
// Conditioning: the change of basis goes through a Vandermonde solve on the
// equispaced reference lattice, whose conditioning degrades combinatorially
// with P. For the SIAC-practical orders (P ≤ 6) the collapse agrees with
// EvalAll to ~1e-12; beyond that callers should validate (Validate) and fall
// back to the modal path — core.NewEvaluator does exactly that.

// monoCache memoises the modal→monomial change-of-basis matrix per degree.
var (
	monoMu    sync.Mutex
	monoCache = map[int]monoEntry{}
)

type monoEntry struct {
	a   [][]float64
	err error
}

// MonomialCoeffs returns the change-of-basis matrix A with A[m] the monomial
// coefficients (in the ordering above) of orthonormal Dubiner mode m, so
// that a modal vector c collapses to monomial coefficients Σ_m c_m·A[m].
// The matrix is cached per degree and must not be modified.
func (b *Basis) MonomialCoeffs() ([][]float64, error) {
	monoMu.Lock()
	defer monoMu.Unlock()
	if e, ok := monoCache[b.P]; ok {
		return e.a, e.err
	}
	a, err := b.computeMonomialCoeffs()
	monoCache[b.P] = monoEntry{a, err}
	return a, err
}

func (b *Basis) computeMonomialCoeffs() ([][]float64, error) {
	n := b.N
	// Unisolvent sample set: the equispaced lattice (i/d, j/d), i+j <= d,
	// has exactly N points and determines total-degree-P polynomials.
	d := b.P
	if d < 1 {
		d = 1
	}
	type rs struct{ r, s float64 }
	pts := make([]rs, 0, n)
	for j := 0; j <= b.P; j++ {
		for i := 0; i+j <= b.P; i++ {
			pts = append(pts, rs{float64(i) / float64(d), float64(j) / float64(d)})
		}
	}
	if len(pts) != n {
		return nil, fmt.Errorf("dg: monomial lattice size %d != modes %d", len(pts), n)
	}
	// Vandermonde in the monomial ordering: V[p][k] = r^a · s^b.
	v := linalg.NewMatrix(n, n)
	for pi, p := range pts {
		row := v.Row(pi)
		k := 0
		sb := 1.0
		for bPow := 0; bPow <= b.P; bPow++ {
			ra := 1.0
			for aPow := 0; aPow+bPow <= b.P; aPow++ {
				row[k] = ra * sb
				k++
				ra *= p.r
			}
			sb *= p.s
		}
	}
	lu, err := linalg.Factor(v)
	if err != nil {
		return nil, fmt.Errorf("dg: monomial Vandermonde at P=%d: %w", b.P, err)
	}
	// Mode values at the lattice points, one column per mode.
	vals := make([][]float64, n)
	for pi, p := range pts {
		vals[pi] = b.EvalAll(p.r, p.s, make([]float64, n))
	}
	a := make([][]float64, n)
	rhs := make([]float64, n)
	for m := 0; m < n; m++ {
		for pi := range pts {
			rhs[pi] = vals[pi][m]
		}
		sol, err := lu.Solve(rhs)
		if err != nil {
			return nil, fmt.Errorf("dg: monomial solve for mode %d at P=%d: %w", m, b.P, err)
		}
		a[m] = sol
	}
	return a, nil
}

// HornerField is a Field collapsed to per-element monomial coefficients for
// Horner evaluation. It is immutable after construction and safe for
// concurrent reads.
type HornerField struct {
	P      int
	N      int       // coefficients per element
	Coeffs []float64 // NumTris × N, element-major, monomial ordering
}

// NewHornerField collapses every element of f. The per-element transforms
// are independent, so they are spread over the given number of workers
// (<= 1 means serial).
func NewHornerField(f *Field, workers int) (*HornerField, error) {
	a, err := f.Basis.MonomialCoeffs()
	if err != nil {
		return nil, err
	}
	n := f.Basis.N
	hf := &HornerField{
		P:      f.Basis.P,
		N:      n,
		Coeffs: make([]float64, len(f.Coeffs)),
	}
	numElems := len(f.Coeffs) / n
	parallelRange(numElems, workers, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			ce := f.Coeffs[e*n : (e+1)*n]
			out := hf.Coeffs[e*n : (e+1)*n]
			for m, c := range ce {
				if c == 0 {
					continue
				}
				am := a[m]
				for k := range out {
					out[k] += c * am[k]
				}
			}
		}
	})
	return hf, nil
}

// ElemCoeffs returns element e's monomial coefficients (do not modify).
func (hf *HornerField) ElemCoeffs(e int) []float64 {
	return hf.Coeffs[e*hf.N : (e+1)*hf.N]
}

// Eval evaluates the collapsed field on element e at reference (r, s).
func (hf *HornerField) Eval(e int, r, s float64) float64 {
	return hf.EvalCoeffs(hf.ElemCoeffs(e), r, s)
}

// EvalCoeffs evaluates one element's monomial coefficients (from ElemCoeffs)
// at reference (r, s) by bivariate Horner: the b-groups are walked from s^P
// down to s^0, each evaluated by an inner Horner pass in r.
func (hf *HornerField) EvalCoeffs(c []float64, r, s float64) float64 {
	u := 0.0
	end := len(c)
	for blen := 1; blen <= hf.P+1; blen++ { // group for s^b has P−b+1 entries
		start := end - blen
		q := c[end-1]
		for a := end - 2; a >= start; a-- {
			q = q*r + c[a]
		}
		u = u*s + q
		end = start
	}
	return u
}

// Validate compares the collapsed field against the modal path (EvalAll +
// dot product) at the given reference points on up to sampleElems elements
// spread across the mesh, returning the maximum absolute difference. It is
// the conditioning guard for high P.
func (hf *HornerField) Validate(f *Field, refPts [][2]float64, sampleElems int) float64 {
	numElems := len(f.Coeffs) / f.Basis.N
	if sampleElems <= 0 || sampleElems > numElems {
		sampleElems = numElems
	}
	stride := numElems / sampleElems
	if stride < 1 {
		stride = 1
	}
	buf := make([]float64, f.Basis.N)
	worst := 0.0
	for e := 0; e < numElems; e += stride {
		ce := f.ElemCoeffs(e)
		hc := hf.ElemCoeffs(e)
		for _, p := range refPts {
			f.Basis.EvalAll(p[0], p[1], buf)
			want := 0.0
			for m, c := range ce {
				want += c * buf[m]
			}
			got := hf.EvalCoeffs(hc, p[0], p[1])
			if d := abs(got - want); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// parallelRange splits [0, n) into contiguous chunks executed across up to
// the given number of goroutines. workers <= 1 (or tiny n) runs inline.
func parallelRange(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 0 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
