// Package dg provides the discontinuous Galerkin substrate that the SIAC
// post-processor consumes: an orthonormal Dubiner (PKD) modal basis on the
// reference triangle, elementwise-polynomial fields with L2 projection and
// evaluation, error norms, and an upwind dG solver for linear advection that
// produces realistic input solutions.
package dg

import (
	"fmt"
	"math"
	"sync"

	"unstencil/internal/quadrature"
)

// Jacobi evaluates the Jacobi polynomial P_n^{(alpha,beta)} at x using the
// standard three-term recurrence.
func Jacobi(n int, alpha, beta, x float64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("dg: Jacobi degree must be >= 0, got %d", n))
	}
	if n == 0 {
		return 1
	}
	p0 := 1.0
	p1 := (alpha-beta)/2 + (alpha+beta+2)/2*x
	for m := 1; m < n; m++ {
		fm := float64(m)
		a := fm + alpha
		b := fm + beta
		c := 2*fm + alpha + beta
		a1 := 2 * (fm + 1) * (fm + alpha + beta + 1) * c
		a2 := (c + 1) * (alpha*alpha - beta*beta)
		a3 := c * (c + 1) * (c + 2)
		a4 := 2 * a * b * (c + 2)
		p2 := ((a2+a3*x)*p1 - a4*p0) / a1
		p0, p1 = p1, p2
	}
	return p1
}

// Legendre evaluates the Legendre polynomial P_n at x.
func Legendre(n int, x float64) float64 { return Jacobi(n, 0, 0, x) }

// NumModes returns the dimension of the total-degree-P polynomial space on
// a triangle: (P+1)(P+2)/2.
func NumModes(p int) int { return (p + 1) * (p + 2) / 2 }

// Basis is the orthonormal Dubiner basis of total degree P on the unit
// reference triangle T = {(r,s): r >= 0, s >= 0, r+s <= 1}, orthonormal
// with respect to the measure dr ds on T. Mode m corresponds to the index
// pair (I[m], J[m]) with I[m]+J[m] <= P.
type Basis struct {
	P    int
	N    int // number of modes
	I, J []int
	norm []float64 // normalisation factors making the basis orthonormal
}

var (
	basisMu    sync.Mutex
	basisCache = map[int]*Basis{}
)

// NewBasis returns the cached basis of total degree p >= 0.
func NewBasis(p int) *Basis {
	if p < 0 {
		panic(fmt.Sprintf("dg: basis degree must be >= 0, got %d", p))
	}
	basisMu.Lock()
	defer basisMu.Unlock()
	if b, ok := basisCache[p]; ok {
		return b
	}
	b := &Basis{P: p, N: NumModes(p)}
	for i := 0; i <= p; i++ {
		for j := 0; i+j <= p; j++ {
			b.I = append(b.I, i)
			b.J = append(b.J, j)
		}
	}
	// Normalise numerically: the raw Dubiner modes are orthogonal on T, so
	// only the diagonal Gram entries are needed. A rule exact for degree 2P
	// makes this exact up to roundoff.
	b.norm = make([]float64, b.N)
	rule := quadrature.TriangleForDegree(2 * p)
	for m := 0; m < b.N; m++ {
		g := 0.0
		for q, pt := range rule.Points {
			v := b.evalRaw(m, pt.X, pt.Y)
			g += rule.Weights[q] * v * v
		}
		b.norm[m] = 1 / math.Sqrt(g)
	}
	basisCache[p] = b
	return b
}

// evalRaw evaluates the unnormalised Dubiner mode m at reference
// coordinates (r, s). Collapsed coordinates: a = 2r/(1-s) - 1, b = 2s - 1;
// the (1-s)^i factor removes the singularity of a at the apex s = 1.
func (b *Basis) evalRaw(m int, r, s float64) float64 {
	i, j := b.I[m], b.J[m]
	oneMinusS := 1 - s
	var a float64
	if math.Abs(oneMinusS) < 1e-14 {
		a = -1 // apex: value is irrelevant for i > 0 due to the (1-s)^i factor
	} else {
		a = 2*r/oneMinusS - 1
	}
	v := Jacobi(i, 0, 0, a)
	if i > 0 {
		v *= math.Pow(oneMinusS, float64(i))
	}
	v *= Jacobi(j, 2*float64(i)+1, 0, 2*s-1)
	return v
}

// Eval evaluates the orthonormal mode m at reference coordinates (r, s).
func (b *Basis) Eval(m int, r, s float64) float64 {
	return b.norm[m] * b.evalRaw(m, r, s)
}

// EvalAll evaluates every mode at (r, s) into out, which must have length
// b.N. It returns out for convenience. This is the post-processor's hot
// path, so all Jacobi recurrences are shared across modes: P_i(a) is built
// once for i = 0..P, and each (i, ·) family shares its own P^{(2i+1,0)}
// recurrence.
func (b *Basis) EvalAll(r, s float64, out []float64) []float64 {
	if len(out) != b.N {
		panic(fmt.Sprintf("dg: EvalAll buffer length %d, want %d", len(out), b.N))
	}
	p := b.P
	oneMinusS := 1 - s
	var a float64
	if math.Abs(oneMinusS) < 1e-14 {
		a = -1
	} else {
		a = 2*r/oneMinusS - 1
	}
	bb := 2*s - 1

	// leg[i] = P_i(a) · (1-s)^i, built by the Legendre recurrence with the
	// (1-s) factor folded in: scaling both sides of the recurrence by
	// (1-s)^{i+1} keeps it exact.
	var leg [16]float64 // P <= 14 is far beyond practical SIAC orders
	if p >= len(leg) {
		panic(fmt.Sprintf("dg: EvalAll supports P < %d, got %d", len(leg), p))
	}
	leg[0] = 1
	if p >= 1 {
		leg[1] = a * oneMinusS
	}
	om2 := oneMinusS * oneMinusS
	for i := 1; i < p; i++ {
		fi := float64(i)
		leg[i+1] = ((2*fi+1)*(a*oneMinusS)*leg[i] - fi*om2*leg[i-1]) / (fi + 1)
	}

	m := 0
	for i := 0; i <= p; i++ {
		// Jacobi P_j^{(alpha,0)}(bb) recurrence for alpha = 2i+1, shared by
		// all j for this i.
		alpha := 2*float64(i) + 1
		j0 := 1.0
		j1 := (alpha+2)/2*bb + alpha/2
		for j := 0; i+j <= p; j++ {
			var pj float64
			switch j {
			case 0:
				pj = j0
			case 1:
				pj = j1
			default:
				// Advance the recurrence once per loop iteration past j=1.
				fj := float64(j - 1)
				c := 2*fj + alpha
				a1 := 2 * (fj + 1) * (fj + alpha + 1) * c
				a2 := (c + 1) * alpha * alpha
				a3 := c * (c + 1) * (c + 2)
				a4 := 2 * (fj + alpha) * fj * (c + 2)
				pj = ((a2+a3*bb)*j1 - a4*j0) / a1
				j0, j1 = j1, pj
			}
			out[m] = b.norm[m] * leg[i] * pj
			m++
		}
	}
	return out
}
