package dg

import (
	"fmt"
	"math"

	"unstencil/internal/geom"
	"unstencil/internal/mesh"
	"unstencil/internal/quadrature"
)

// Field is a discontinuous piecewise-polynomial function over a triangular
// mesh: on each element it is a degree-P polynomial stored as modal
// coefficients in the orthonormal Dubiner basis of the reference triangle.
// This is exactly the "array of polynomial modes" the paper's post-processor
// takes as input (§2.2).
type Field struct {
	Mesh   *mesh.Mesh
	Basis  *Basis
	Coeffs []float64 // NumTris × Basis.N, element-major
}

// NewField allocates a zero field of degree p over m.
func NewField(m *mesh.Mesh, p int) *Field {
	b := NewBasis(p)
	return &Field{
		Mesh:   m,
		Basis:  b,
		Coeffs: make([]float64, m.NumTris()*b.N),
	}
}

// P returns the polynomial degree.
func (f *Field) P() int { return f.Basis.P }

// ElemCoeffs returns the modal coefficients of element e (a mutable view).
func (f *Field) ElemCoeffs(e int) []float64 {
	n := f.Basis.N
	return f.Coeffs[e*n : (e+1)*n]
}

// Project computes the elementwise L2 projection of fn onto the degree-p
// broken polynomial space over m. For affine elements the reference-space
// projection with an orthonormal basis is a plain inner product; quadDegree
// extra quadrature degrees are added beyond 2p to resolve non-polynomial
// integrands (pass 0 for polynomial inputs).
func Project(m *mesh.Mesh, p int, fn func(geom.Point) float64, quadDegree int) *Field {
	f := NewField(m, p)
	rule := quadrature.TriangleForDegree(2*p + quadDegree)
	nq := rule.Len()
	basisAt := make([][]float64, nq)
	for q, pt := range rule.Points {
		basisAt[q] = f.Basis.EvalAll(pt.X, pt.Y, make([]float64, f.Basis.N))
	}
	vals := make([]float64, nq)
	for e := 0; e < m.NumTris(); e++ {
		tri := m.Triangle(e)
		for q, pt := range rule.Points {
			vals[q] = fn(tri.MapReference(pt.X, pt.Y))
		}
		ce := f.ElemCoeffs(e)
		for mm := range ce {
			s := 0.0
			for q := 0; q < nq; q++ {
				// Reference-measure inner product: orthonormality holds in
				// reference space; the affine Jacobian cancels.
				s += rule.Weights[q] * vals[q] * basisAt[q][mm]
			}
			// The reference triangle has area 1/2 and the basis is
			// orthonormal w.r.t. the full reference measure, so no extra
			// scaling is needed.
			ce[mm] = s
		}
	}
	return f
}

// EvalRef evaluates the field on element e at reference coordinates (r, s).
func (f *Field) EvalRef(e int, r, s float64) float64 {
	ce := f.ElemCoeffs(e)
	sum := 0.0
	for m, c := range ce {
		if c != 0 {
			sum += c * f.Basis.Eval(m, r, s)
		}
	}
	return sum
}

// EvalIn evaluates the field at physical point p, which the caller asserts
// lies in element e.
func (f *Field) EvalIn(e int, p geom.Point) float64 {
	r, s := f.Mesh.Triangle(e).InverseMap(p)
	return f.EvalRef(e, r, s)
}

// Eval evaluates the field at physical point p by scanning for the
// containing element (O(NumTris); use EvalIn with a spatial index for bulk
// evaluation).
func (f *Field) Eval(p geom.Point) (float64, error) {
	for e := 0; e < f.Mesh.NumTris(); e++ {
		if f.Mesh.Triangle(e).Contains(p) {
			return f.EvalIn(e, p), nil
		}
	}
	return 0, fmt.Errorf("dg: point %v not inside any element", p)
}

// L2Error returns the broken L2 norm of (field − ref) over the mesh,
// computed with a rule exact for degree 2P + extraDegree.
func (f *Field) L2Error(ref func(geom.Point) float64, extraDegree int) float64 {
	rule := quadrature.TriangleForDegree(2*f.Basis.P + extraDegree)
	basisAt := make([][]float64, rule.Len())
	for q, pt := range rule.Points {
		basisAt[q] = f.Basis.EvalAll(pt.X, pt.Y, make([]float64, f.Basis.N))
	}
	total := 0.0
	for e := 0; e < f.Mesh.NumTris(); e++ {
		tri := f.Mesh.Triangle(e)
		jac := 2 * tri.Area()
		ce := f.ElemCoeffs(e)
		for q, pt := range rule.Points {
			v := 0.0
			for m, c := range ce {
				v += c * basisAt[q][m]
			}
			d := v - ref(tri.MapReference(pt.X, pt.Y))
			total += rule.Weights[q] * d * d * jac
		}
	}
	return math.Sqrt(total)
}

// MaxError samples the field at nSamples quadrature points per element and
// returns the maximum absolute deviation from ref.
func (f *Field) MaxError(ref func(geom.Point) float64, degree int) float64 {
	rule := quadrature.TriangleForDegree(degree)
	worst := 0.0
	for e := 0; e < f.Mesh.NumTris(); e++ {
		tri := f.Mesh.Triangle(e)
		for _, pt := range rule.Points {
			p := tri.MapReference(pt.X, pt.Y)
			d := math.Abs(f.EvalRef(e, pt.X, pt.Y) - ref(p))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// L2Norm returns the broken L2 norm of the field itself. With an
// orthonormal reference basis this is Σ_e (2·Area_e) Σ_m c_{e,m}² up to the
// affine scaling, computed here exactly from the coefficients.
func (f *Field) L2Norm() float64 {
	total := 0.0
	for e := 0; e < f.Mesh.NumTris(); e++ {
		jac := 2 * f.Mesh.Triangle(e).Area()
		ce := f.ElemCoeffs(e)
		s := 0.0
		for _, c := range ce {
			s += c * c
		}
		total += jac * s
	}
	return math.Sqrt(total)
}
