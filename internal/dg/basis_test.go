package dg

import (
	"math"
	"testing"

	"unstencil/internal/quadrature"
)

func TestJacobiLowDegrees(t *testing.T) {
	// P_0 = 1, P_1^{a,b}(x) = (a-b)/2 + (a+b+2)/2 x.
	for _, x := range []float64{-1, -0.3, 0, 0.7, 1} {
		if Jacobi(0, 1, 2, x) != 1 {
			t.Error("P0 != 1")
		}
		want := (1.0-2.0)/2 + (1.0+2.0+2.0)/2*x
		if math.Abs(Jacobi(1, 1, 2, x)-want) > 1e-14 {
			t.Errorf("P1^{1,2}(%v) = %v, want %v", x, Jacobi(1, 1, 2, x), want)
		}
	}
}

func TestLegendreValues(t *testing.T) {
	// P_2(x) = (3x²-1)/2, P_3(x) = (5x³-3x)/2.
	for _, x := range []float64{-0.9, -0.2, 0.4, 1} {
		if got, want := Legendre(2, x), (3*x*x-1)/2; math.Abs(got-want) > 1e-14 {
			t.Errorf("P2(%v) = %v, want %v", x, got, want)
		}
		if got, want := Legendre(3, x), (5*x*x*x-3*x)/2; math.Abs(got-want) > 1e-14 {
			t.Errorf("P3(%v) = %v, want %v", x, got, want)
		}
	}
	// P_n(1) = 1 for all n.
	for n := 0; n <= 10; n++ {
		if math.Abs(Legendre(n, 1)-1) > 1e-12 {
			t.Errorf("P%d(1) = %v", n, Legendre(n, 1))
		}
	}
}

func TestJacobiOrthogonality(t *testing.T) {
	// ∫ P_m^{a,b} P_n^{a,b} (1-x)^a (1+x)^b dx = 0 for m != n.
	alpha, beta := 3.0, 0.0
	for m := 0; m <= 4; m++ {
		for n := 0; n <= 4; n++ {
			if m == n {
				continue
			}
			got := quadrature.Integrate1D(func(x float64) float64 {
				return Jacobi(m, alpha, beta, x) * Jacobi(n, alpha, beta, x) *
					math.Pow(1-x, alpha) * math.Pow(1+x, beta)
			}, -1, 1, 12)
			if math.Abs(got) > 1e-12 {
				t.Errorf("<P%d, P%d> = %v, want 0", m, n, got)
			}
		}
	}
}

func TestNumModes(t *testing.T) {
	wants := map[int]int{0: 1, 1: 3, 2: 6, 3: 10, 4: 15}
	for p, w := range wants {
		if NumModes(p) != w {
			t.Errorf("NumModes(%d) = %d, want %d", p, NumModes(p), w)
		}
	}
}

func TestBasisOrthonormality(t *testing.T) {
	for p := 0; p <= 4; p++ {
		b := NewBasis(p)
		if b.N != NumModes(p) {
			t.Fatalf("p=%d: N = %d", p, b.N)
		}
		rule := quadrature.TriangleForDegree(2 * p)
		for m := 0; m < b.N; m++ {
			for n := m; n < b.N; n++ {
				g := 0.0
				for q, pt := range rule.Points {
					g += rule.Weights[q] * b.Eval(m, pt.X, pt.Y) * b.Eval(n, pt.X, pt.Y)
				}
				want := 0.0
				if m == n {
					want = 1
				}
				if math.Abs(g-want) > 1e-11 {
					t.Errorf("p=%d: <φ%d, φ%d> = %v, want %v", p, m, n, g, want)
				}
			}
		}
	}
}

func TestBasisSpansPolynomials(t *testing.T) {
	// The degree-2 basis must represent r² exactly: project and compare.
	b := NewBasis(2)
	rule := quadrature.TriangleForDegree(6)
	coef := make([]float64, b.N)
	for m := 0; m < b.N; m++ {
		s := 0.0
		for q, pt := range rule.Points {
			s += rule.Weights[q] * pt.X * pt.X * b.Eval(m, pt.X, pt.Y)
		}
		coef[m] = s
	}
	for _, pt := range rule.Points {
		got := 0.0
		for m, c := range coef {
			got += c * b.Eval(m, pt.X, pt.Y)
		}
		if math.Abs(got-pt.X*pt.X) > 1e-11 {
			t.Fatalf("reconstruction of r² at %v = %v", pt, got)
		}
	}
}

func TestBasisApexRegular(t *testing.T) {
	// The collapsed-coordinate singularity at s=1 must produce finite
	// values.
	b := NewBasis(3)
	for m := 0; m < b.N; m++ {
		v := b.Eval(m, 0, 1)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("mode %d at apex = %v", m, v)
		}
	}
}

func TestBasisCached(t *testing.T) {
	if NewBasis(2) != NewBasis(2) {
		t.Error("NewBasis should cache")
	}
}

func TestEvalAll(t *testing.T) {
	b := NewBasis(2)
	out := make([]float64, b.N)
	b.EvalAll(0.3, 0.2, out)
	for m := range out {
		if math.Abs(out[m]-b.Eval(m, 0.3, 0.2)) > 1e-15 {
			t.Fatalf("EvalAll mode %d mismatch", m)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong buffer size")
		}
	}()
	b.EvalAll(0, 0, make([]float64, 2))
}

func BenchmarkEvalAllP3(b *testing.B) {
	bs := NewBasis(3)
	out := make([]float64, bs.N)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bs.EvalAll(0.3, 0.4, out)
	}
}
