package dg

import (
	"fmt"
	"math"

	"unstencil/internal/geom"
	"unstencil/internal/mesh"
	"unstencil/internal/quadrature"
)

// AdvectionSolver integrates the linear advection equation
//
//	u_t + β·∇u = 0
//
// on the periodic unit square with a modal dG discretisation (upwind flux,
// SSP-RK3 time stepping). It produces genuinely discontinuous dG solutions —
// exactly the input class the SIAC post-processor exists for — so the
// examples can demonstrate the full simulate → post-process pipeline rather
// than post-processing projections only.
type AdvectionSolver struct {
	Field *Field
	Beta  geom.Point

	adj *Adjacency

	// Precomputed reference-space data shared by all elements.
	volRule  quadrature.Rule2D
	volBasis [][]float64    // [q][m] basis values at volume points
	volGrad  [][][2]float64 // [q][m] reference gradients at volume points
	edgeRule quadrature.Rule1D
	// edgeBasis[le][q][m]: basis at edge quadrature point q of local edge
	// le (edges parameterised from vertex le to vertex le+1).
	edgeBasis [][][]float64
	edgeRef   [][]geom.Point // [le][q] reference coordinates of edge points

	// Per-element geometry.
	invJT   [][4]float64 // inverse-transpose Jacobians (row-major 2x2)
	jacDet  []float64    // 2*area
	normals [][3]geom.Point
	edgeLen [][3]float64

	// Scratch buffers for the RK stages.
	rhs, stage1, stage2 []float64
	minH                float64
}

// NewAdvection builds a solver of order p over m with velocity beta and
// initial condition u0 (projected onto the dG space).
func NewAdvection(m *mesh.Mesh, p int, beta geom.Point, u0 func(geom.Point) float64) (*AdvectionSolver, error) {
	if p < 0 {
		return nil, fmt.Errorf("dg: advection order must be >= 0, got %d", p)
	}
	adj, err := BuildAdjacency(m, true)
	if err != nil {
		return nil, err
	}
	s := &AdvectionSolver{
		Field: Project(m, p, u0, 4),
		Beta:  beta,
		adj:   adj,
	}
	b := s.Field.Basis

	// Volume rule: integrands (β·∇φ_i)·u have degree 2p-1; use 2p.
	s.volRule = quadrature.TriangleForDegree(2 * p)
	s.volBasis = make([][]float64, s.volRule.Len())
	s.volGrad = make([][][2]float64, s.volRule.Len())
	const fd = 1e-6
	for q, pt := range s.volRule.Points {
		s.volBasis[q] = b.EvalAll(pt.X, pt.Y, make([]float64, b.N))
		s.volGrad[q] = make([][2]float64, b.N)
		// Central finite differences are exact to ~1e-10 for these
		// low-degree polynomials, sparing an analytic gradient recurrence.
		rp := b.EvalAll(pt.X+fd, pt.Y, make([]float64, b.N))
		rm := b.EvalAll(pt.X-fd, pt.Y, make([]float64, b.N))
		sp := b.EvalAll(pt.X, pt.Y+fd, make([]float64, b.N))
		sm := b.EvalAll(pt.X, pt.Y-fd, make([]float64, b.N))
		for mi := 0; mi < b.N; mi++ {
			s.volGrad[q][mi] = [2]float64{
				(rp[mi] - rm[mi]) / (2 * fd),
				(sp[mi] - sm[mi]) / (2 * fd),
			}
		}
	}

	// Edge rule: flux integrands have degree 2p along the edge.
	s.edgeRule = quadrature.GaussLegendre(p+1).Interval(0, 1)
	refCorners := [3]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}
	s.edgeBasis = make([][][]float64, 3)
	s.edgeRef = make([][]geom.Point, 3)
	for le := 0; le < 3; le++ {
		a := refCorners[le]
		c := refCorners[(le+1)%3]
		s.edgeBasis[le] = make([][]float64, len(s.edgeRule.Nodes))
		s.edgeRef[le] = make([]geom.Point, len(s.edgeRule.Nodes))
		for q, t := range s.edgeRule.Nodes {
			rp := geom.Pt(a.X+(c.X-a.X)*t, a.Y+(c.Y-a.Y)*t)
			s.edgeRef[le][q] = rp
			s.edgeBasis[le][q] = b.EvalAll(rp.X, rp.Y, make([]float64, b.N))
		}
	}

	// Per-element geometry.
	n := m.NumTris()
	s.invJT = make([][4]float64, n)
	s.jacDet = make([]float64, n)
	s.normals = make([][3]geom.Point, n)
	s.edgeLen = make([][3]float64, n)
	s.minH = math.Inf(1)
	for e := 0; e < n; e++ {
		tri := m.Triangle(e)
		_, jac := tri.AffineFromReference()
		det := jac[0]*jac[3] - jac[1]*jac[2]
		s.jacDet[e] = det
		// inv(J)ᵀ = (1/det)·[ys -yr; -xs xr]ᵀ.
		s.invJT[e] = [4]float64{
			jac[3] / det, -jac[2] / det,
			-jac[1] / det, jac[0] / det,
		}
		vs := [3]geom.Point{tri.A, tri.B, tri.C}
		for le := 0; le < 3; le++ {
			a := vs[le]
			c := vs[(le+1)%3]
			d := c.Sub(a)
			s.edgeLen[e][le] = d.Norm()
			// Outward normal of a CCW triangle: rotate the edge direction
			// by -90°.
			s.normals[e][le] = geom.Pt(d.Y, -d.X).Scale(1 / d.Norm())
		}
		if h := 2 * tri.Area() / tri.LongestEdge(); h < s.minH {
			s.minH = h
		}
	}
	nn := n * b.N
	s.rhs = make([]float64, nn)
	s.stage1 = make([]float64, nn)
	s.stage2 = make([]float64, nn)
	return s, nil
}

// evalAt evaluates the coefficient vector u on element e at precomputed
// basis values.
func evalAt(basis []float64, coeffs []float64) float64 {
	v := 0.0
	for m, b := range basis {
		v += coeffs[m] * b
	}
	return v
}

// computeRHS fills out with du/dt for the given coefficient state.
func (s *AdvectionSolver) computeRHS(coeffs, out []float64) {
	m := s.Field.Mesh
	b := s.Field.Basis
	nb := b.N
	for e := 0; e < m.NumTris(); e++ {
		ce := coeffs[e*nb : (e+1)*nb]
		oe := out[e*nb : (e+1)*nb]
		for i := range oe {
			oe[i] = 0
		}
		// Volume term: +∫ (β·∇φ_i) u dx, computed in reference space with
		// physical gradients ∇φ = inv(J)ᵀ∇_ref φ and measure jacDet·dref.
		ij := s.invJT[e]
		bx := s.Beta.X*ij[0] + s.Beta.Y*ij[2]
		by := s.Beta.X*ij[1] + s.Beta.Y*ij[3]
		for q := range s.volRule.Points {
			u := evalAt(s.volBasis[q], ce)
			w := s.volRule.Weights[q] * s.jacDet[e] * u
			g := s.volGrad[q]
			for i := 0; i < nb; i++ {
				oe[i] += w * (bx*g[i][0] + by*g[i][1])
			}
		}
		// Surface term: −∮ φ_i (β·n) û ds with upwind û.
		tri := m.Triangle(e)
		for le := 0; le < 3; le++ {
			bn := s.Beta.Dot(s.normals[e][le])
			nbr := s.adj.Neighbors[e][le]
			for q := range s.edgeRule.Nodes {
				uMinus := evalAt(s.edgeBasis[le][q], ce)
				var uHat float64
				if bn >= 0 || nbr.Elem < 0 {
					uHat = uMinus // outflow (or boundary): take own value
				} else {
					rp := s.edgeRef[le][q]
					phys := tri.MapReference(rp.X, rp.Y).Add(nbr.Shift)
					ntri := m.Triangle(int(nbr.Elem))
					r, ss := ntri.InverseMap(phys)
					cn := coeffs[int(nbr.Elem)*nb : (int(nbr.Elem)+1)*nb]
					uHat = 0
					for mi := 0; mi < nb; mi++ {
						uHat += cn[mi] * b.Eval(mi, r, ss)
					}
				}
				w := s.edgeRule.Weights[q] * s.edgeLen[e][le] * bn * uHat
				for i := 0; i < nb; i++ {
					oe[i] -= w * s.edgeBasis[le][q][i]
				}
			}
		}
		// Mass matrix: orthonormal reference basis gives M = jacDet·I.
		inv := 1 / s.jacDet[e]
		for i := range oe {
			oe[i] *= inv
		}
	}
}

// MaxDT returns a stable time step for the given CFL number.
func (s *AdvectionSolver) MaxDT(cfl float64) float64 {
	speed := s.Beta.Norm()
	if speed == 0 {
		return math.Inf(1)
	}
	return cfl * s.minH / (speed * float64(2*s.Field.Basis.P+1))
}

// Step advances the solution by dt with the three-stage SSP-RK3 scheme.
func (s *AdvectionSolver) Step(dt float64) {
	u := s.Field.Coeffs
	s.computeRHS(u, s.rhs)
	for i := range u {
		s.stage1[i] = u[i] + dt*s.rhs[i]
	}
	s.computeRHS(s.stage1, s.rhs)
	for i := range u {
		s.stage2[i] = 0.75*u[i] + 0.25*(s.stage1[i]+dt*s.rhs[i])
	}
	s.computeRHS(s.stage2, s.rhs)
	for i := range u {
		u[i] = u[i]/3 + 2.0/3*(s.stage2[i]+dt*s.rhs[i])
	}
}

// Run integrates to time T with the given CFL number and returns the number
// of steps taken.
func (s *AdvectionSolver) Run(T, cfl float64) int {
	steps := 0
	for t := 0.0; t < T-1e-12; {
		dt := s.MaxDT(cfl)
		if t+dt > T {
			dt = T - t
		}
		s.Step(dt)
		t += dt
		steps++
	}
	return steps
}
