package dg

import (
	"math"
	"testing"

	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

func TestBuildAdjacencyInterior(t *testing.T) {
	m := mesh.Structured(4)
	adj, err := BuildAdjacency(m, false)
	if err != nil {
		t.Fatal(err)
	}
	// Each interior edge pairs two elements symmetrically.
	for e := range adj.Neighbors {
		for le := 0; le < 3; le++ {
			n := adj.Neighbors[e][le]
			if n.Elem < 0 {
				continue
			}
			found := false
			for ole := 0; ole < 3; ole++ {
				if adj.Neighbors[n.Elem][ole].Elem == int32(e) {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d -> %d", e, n.Elem)
			}
		}
	}
}

func TestBuildAdjacencyPeriodic(t *testing.T) {
	for _, build := range []func() (*mesh.Mesh, error){
		func() (*mesh.Mesh, error) { return mesh.Structured(5), nil },
		func() (*mesh.Mesh, error) { return mesh.LowVariance(6, 3) },
	} {
		m, err := build()
		if err != nil {
			t.Fatal(err)
		}
		adj, err := BuildAdjacency(m, true)
		if err != nil {
			t.Fatal(err)
		}
		// Periodic: every edge has a neighbour.
		wrapped := 0
		for e := range adj.Neighbors {
			for le := 0; le < 3; le++ {
				n := adj.Neighbors[e][le]
				if n.Elem < 0 {
					t.Fatalf("element %d edge %d has no neighbour under periodicity", e, le)
				}
				if n.Shift != geom.Pt(0, 0) {
					wrapped++
				}
			}
		}
		if wrapped == 0 {
			t.Error("no wrapped edges found")
		}
	}
}

func TestBuildAdjacencyNonManifold(t *testing.T) {
	m := &mesh.Mesh{
		Verts: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}, {X: 0.5, Y: -1}},
		Tris:  [][3]int32{{0, 1, 2}, {0, 1, 3}, {0, 1, 4}},
	}
	if _, err := BuildAdjacency(m, false); err == nil {
		t.Error("non-manifold mesh should error")
	}
}

// A constant field is an exact steady solution of linear advection: the
// solver must preserve it to roundoff.
func TestAdvectionPreservesConstant(t *testing.T) {
	m := mesh.Structured(6)
	s, err := NewAdvection(m, 1, geom.Pt(1, 0.5), func(geom.Point) float64 { return 3 })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Step(s.MaxDT(0.3))
	}
	// Tolerance reflects the ~1e-10 accuracy of the finite-difference
	// reference gradients.
	if e := s.Field.MaxError(func(geom.Point) float64 { return 3 }, 2); e > 1e-8 {
		t.Errorf("constant drifted by %v", e)
	}
}

// Upwind dG is L2-stable: the energy must not grow.
func TestAdvectionEnergyStable(t *testing.T) {
	m, err := mesh.LowVariance(6, 7)
	if err != nil {
		t.Fatal(err)
	}
	u0 := func(p geom.Point) float64 { return math.Sin(2 * math.Pi * p.X) }
	s, err := NewAdvection(m, 1, geom.Pt(1, 0.3), u0)
	if err != nil {
		t.Fatal(err)
	}
	e0 := s.Field.L2Norm()
	for i := 0; i < 30; i++ {
		s.Step(s.MaxDT(0.3))
	}
	e1 := s.Field.L2Norm()
	if e1 > e0*(1+1e-10) {
		t.Errorf("energy grew: %v -> %v", e0, e1)
	}
	if e1 < 0.5*e0 {
		t.Errorf("energy collapsed (too dissipative or unstable): %v -> %v", e0, e1)
	}
}

// Advecting a smooth periodic profile for a full period returns it to the
// start; the error must shrink with mesh refinement.
func TestAdvectionFullPeriodConvergence(t *testing.T) {
	u0 := func(p geom.Point) float64 { return math.Sin(2 * math.Pi * p.X) }
	errAt := func(n int) float64 {
		m := mesh.Structured(n)
		s, err := NewAdvection(m, 1, geom.Pt(1, 0), u0)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(1, 0.3)
		return s.Field.L2Error(u0, 4)
	}
	e1 := errAt(4)
	e2 := errAt(8)
	rate := math.Log2(e1 / e2)
	t.Logf("full-period errors: %g -> %g (rate %.2f)", e1, e2, rate)
	if e2 >= e1 {
		t.Errorf("error did not shrink under refinement: %v -> %v", e1, e2)
	}
	if rate < 1.5 {
		t.Errorf("convergence rate %.2f too low for P=1 upwind dG", rate)
	}
}

// The solver must run (and stay stable) on unstructured periodic meshes.
func TestAdvectionUnstructured(t *testing.T) {
	m, err := mesh.LowVariance(8, 9)
	if err != nil {
		t.Fatal(err)
	}
	u0 := func(p geom.Point) float64 {
		return math.Sin(2*math.Pi*p.X) * math.Sin(2*math.Pi*p.Y)
	}
	s, err := NewAdvection(m, 2, geom.Pt(0.7, 0.4), u0)
	if err != nil {
		t.Fatal(err)
	}
	steps := s.Run(0.05, 0.25)
	if steps == 0 {
		t.Fatal("no steps taken")
	}
	for _, c := range s.Field.Coeffs {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatal("solution blew up")
		}
	}
	// Error vs the exact translated solution stays moderate.
	exact := func(p geom.Point) float64 {
		return u0(geom.Pt(p.X-0.7*0.05, p.Y-0.4*0.05))
	}
	if e := s.Field.L2Error(exact, 4); e > 0.05 {
		t.Errorf("short-time error %v too large", e)
	}
}

func TestMaxDT(t *testing.T) {
	m := mesh.Structured(4)
	s, err := NewAdvection(m, 1, geom.Pt(0, 0), func(geom.Point) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(s.MaxDT(0.5), 1) {
		t.Error("zero velocity should give infinite dt")
	}
}

func TestNewAdvectionErrors(t *testing.T) {
	m := mesh.Structured(4)
	if _, err := NewAdvection(m, -1, geom.Pt(1, 0), func(geom.Point) float64 { return 1 }); err == nil {
		t.Error("negative order should fail")
	}
}

func BenchmarkAdvectionStep(b *testing.B) {
	m := mesh.Structured(8)
	s, err := NewAdvection(m, 1, geom.Pt(1, 0.5),
		func(p geom.Point) float64 { return math.Sin(2 * math.Pi * p.X) })
	if err != nil {
		b.Fatal(err)
	}
	dt := s.MaxDT(0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(dt)
	}
}
