package dg

import (
	"math"
	"math/rand"
	"testing"

	"unstencil/internal/mesh"
)

// The collapsed monomial field must agree with the modal path (EvalAll +
// dot product) to near machine precision for all SIAC-practical orders.
func TestHornerFieldMatchesModal(t *testing.T) {
	m, merr := mesh.LowVariance(6, 1)
	if merr != nil {
		t.Fatal(merr)
	}
	rng := rand.New(rand.NewSource(3))
	for p := 1; p <= 6; p++ {
		// The Vandermonde conditioning degrades combinatorially with P;
		// 1e-12 holds through P=4, the top practical orders sit near 1e-11.
		tol := 1e-12
		if p >= 5 {
			tol = 1e-10
		}
		f := NewField(m, p)
		for i := range f.Coeffs {
			f.Coeffs[i] = rng.NormFloat64()
		}
		hf, err := NewHornerField(f, 1)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		buf := make([]float64, f.Basis.N)
		for e := 0; e < m.NumTris(); e += 7 {
			ce := f.ElemCoeffs(e)
			for trial := 0; trial < 40; trial++ {
				// Random barycentric point in the reference triangle.
				r := rng.Float64()
				s := rng.Float64() * (1 - r)
				f.Basis.EvalAll(r, s, buf)
				want := 0.0
				for mm, c := range ce {
					want += c * buf[mm]
				}
				got := hf.Eval(e, r, s)
				if math.Abs(got-want) > tol*(1+math.Abs(want)) {
					t.Fatalf("P=%d elem %d (r=%v, s=%v): horner %v, modal %v",
						p, e, r, s, got, want)
				}
			}
		}
	}
}

// Serial and parallel collapse must produce identical coefficients.
func TestHornerFieldParallelDeterministic(t *testing.T) {
	m, merr := mesh.LowVariance(8, 2)
	if merr != nil {
		t.Fatal(merr)
	}
	rng := rand.New(rand.NewSource(5))
	f := NewField(m, 3)
	for i := range f.Coeffs {
		f.Coeffs[i] = rng.NormFloat64()
	}
	serial, err := NewHornerField(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewHornerField(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Coeffs {
		if serial.Coeffs[i] != parallel.Coeffs[i] {
			t.Fatalf("coeff %d differs: serial %v, parallel %v",
				i, serial.Coeffs[i], parallel.Coeffs[i])
		}
	}
}

// Validate must report ~0 for a healthy collapse and detect corruption.
func TestHornerFieldValidate(t *testing.T) {
	m, merr := mesh.LowVariance(5, 1)
	if merr != nil {
		t.Fatal(merr)
	}
	rng := rand.New(rand.NewSource(9))
	f := NewField(m, 2)
	for i := range f.Coeffs {
		f.Coeffs[i] = rng.NormFloat64()
	}
	hf, err := NewHornerField(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	pts := [][2]float64{{0.2, 0.3}, {0.5, 0.25}, {0.1, 0.8}, {1.0 / 3, 1.0 / 3}}
	if worst := hf.Validate(f, pts, 0); worst > 1e-12 {
		t.Fatalf("healthy collapse validates to %v", worst)
	}
	hf.Coeffs[0] += 0.5
	if worst := hf.Validate(f, pts, 0); worst < 0.1 {
		t.Fatalf("corrupted collapse validates to %v, expected >= 0.1", worst)
	}
}

// MonomialCoeffs is memoised per degree: repeated calls must return the
// same backing matrix.
func TestMonomialCoeffsCached(t *testing.T) {
	b := NewBasis(4)
	a1, err := b.MonomialCoeffs()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewBasis(4).MonomialCoeffs()
	if err != nil {
		t.Fatal(err)
	}
	if &a1[0][0] != &a2[0][0] {
		t.Fatal("MonomialCoeffs not cached across Basis instances")
	}
}
