package dg

import (
	"math"
	"testing"

	"unstencil/internal/geom"
	"unstencil/internal/mesh"
)

func TestProjectionReproducesPolynomials(t *testing.T) {
	m, err := mesh.LowVariance(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	polys := []struct {
		deg int
		fn  func(geom.Point) float64
	}{
		{0, func(p geom.Point) float64 { return 3 }},
		{1, func(p geom.Point) float64 { return 1 + 2*p.X - p.Y }},
		{2, func(p geom.Point) float64 { return p.X*p.X + p.X*p.Y - 2*p.Y*p.Y + p.X }},
		{3, func(p geom.Point) float64 { return p.X*p.X*p.X - 3*p.X*p.Y*p.Y + 0.5 }},
	}
	for _, pc := range polys {
		for p := pc.deg; p <= 3; p++ {
			f := Project(m, p, pc.fn, 0)
			if e := f.MaxError(pc.fn, 4); e > 1e-10 {
				t.Errorf("deg-%d poly projected at P=%d: max error %v", pc.deg, p, e)
			}
		}
	}
}

func TestProjectionConvergence(t *testing.T) {
	// L2 error of projecting sin(2πx)cos(2πy) must shrink like h^{P+1}.
	fn := func(p geom.Point) float64 {
		return math.Sin(2*math.Pi*p.X) * math.Cos(2*math.Pi*p.Y)
	}
	for p := 1; p <= 2; p++ {
		var errs []float64
		for _, n := range []int{4, 8, 16} {
			m := mesh.Structured(n)
			f := Project(m, p, fn, 6)
			errs = append(errs, f.L2Error(fn, 6))
		}
		r1 := math.Log2(errs[0] / errs[1])
		r2 := math.Log2(errs[1] / errs[2])
		want := float64(p + 1)
		if r2 < want-0.5 {
			t.Errorf("P=%d: convergence rates %.2f, %.2f; want ≈ %v (errors %v)",
				p, r1, r2, want, errs)
		}
	}
}

func TestEvalInMatchesEvalRef(t *testing.T) {
	m := mesh.Structured(3)
	fn := func(p geom.Point) float64 { return p.X + 2*p.Y }
	f := Project(m, 1, fn, 0)
	for e := 0; e < m.NumTris(); e++ {
		tri := m.Triangle(e)
		c := tri.Centroid()
		if got := f.EvalIn(e, c); math.Abs(got-fn(c)) > 1e-12 {
			t.Fatalf("elem %d: EvalIn(centroid) = %v, want %v", e, got, fn(c))
		}
	}
}

func TestEvalScan(t *testing.T) {
	m := mesh.Structured(2)
	f := Project(m, 1, func(p geom.Point) float64 { return p.X }, 0)
	got, err := f.Eval(geom.Pt(0.3, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Eval = %v, want 0.3", got)
	}
	if _, err := f.Eval(geom.Pt(2, 2)); err == nil {
		t.Error("outside point should error")
	}
}

func TestL2NormMatchesQuadrature(t *testing.T) {
	m := mesh.Structured(4)
	fn := func(p geom.Point) float64 { return p.X * p.Y }
	f := Project(m, 2, fn, 0)
	// ∫∫ (xy)² over unit square = 1/9, so ||f|| = 1/3.
	if got := f.L2Norm(); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("L2Norm = %v, want 1/3", got)
	}
	zero := f.L2Error(fn, 2)
	if zero > 1e-12 {
		t.Errorf("projection of degree-2 poly has L2 error %v", zero)
	}
}

func TestFieldIsDiscontinuous(t *testing.T) {
	// Projecting a non-polynomial yields (slightly) different limits across
	// element interfaces — verify the data layout keeps elements
	// independent by perturbing one element only.
	m := mesh.Structured(2)
	f := NewField(m, 1)
	f.ElemCoeffs(0)[0] = 1
	if f.EvalRef(0, 0.25, 0.25) == 0 {
		t.Error("element 0 should be nonzero")
	}
	if f.EvalRef(1, 0.25, 0.25) != 0 {
		t.Error("element 1 should be untouched")
	}
}

func TestElemCoeffsIsView(t *testing.T) {
	m := mesh.Structured(2)
	f := NewField(m, 2)
	f.ElemCoeffs(3)[2] = 7
	if f.Coeffs[3*f.Basis.N+2] != 7 {
		t.Error("ElemCoeffs must alias backing storage")
	}
}

func BenchmarkProjectP2(b *testing.B) {
	m := mesh.Structured(16)
	fn := func(p geom.Point) float64 { return math.Sin(p.X) * p.Y }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Project(m, 2, fn, 2)
	}
}
